#include "baselines/venetis.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>

#include "core/round_engine.h"

namespace crowdmax {

namespace {

// Number of single-elimination rounds for n elements (byes advance free).
int64_t LadderRounds(int64_t n) {
  int64_t rounds = 0;
  while (n > 1) {
    n = (n + 1) / 2;
    ++rounds;
  }
  return rounds;
}

// Matches played in round r (0-based) of a ladder starting from n.
int64_t MatchesInRound(int64_t n, int64_t round) {
  for (int64_t r = 0; r < round; ++r) n = (n + 1) / 2;
  return n / 2;
}

// One ladder round per engine round; one match per unit, whose pair is
// repeated votes_for_round times (units are the forking granularity, so
// every match votes through its own comparator stream). The engine must
// not memoize: repeated votes are the point.
class VenetisRoundSource : public RoundSource {
 public:
  VenetisRoundSource(const std::vector<ElementId>& items,
                     const VenetisOptions& options)
      : options_(options), current_(items) {}

  Result<bool> NextRound(EngineRound* round) override {
    if (current_.size() <= 1) return false;
    votes_ = votes_for_round(result_.rounds);
    num_matches_ = current_.size() / 2;
    round->units.reserve(num_matches_);
    for (size_t m = 0; m < num_matches_; ++m) {
      RoundUnit unit;
      unit.pairs.assign(static_cast<size_t>(votes_),
                        {current_[2 * m], current_[2 * m + 1]});
      round->units.push_back(std::move(unit));
    }
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    ++result_.rounds;
    result_.issued_comparisons += outcome.issued;
    std::vector<ElementId> winners;
    winners.reserve(num_matches_ + 1);
    for (size_t m = 0; m < num_matches_; ++m) {
      const ElementId a = current_[2 * m];
      int64_t wins_a = 0;
      for (const ElementId winner : outcome.winners[m]) {
        if (winner == a) ++wins_a;
      }
      // An unresolved vote counts toward neither side; the strict majority
      // rule then favors b, exactly like a lost vote.
      winners.push_back(2 * wins_a > votes_ ? a : current_[2 * m + 1]);
    }
    if (current_.size() % 2 == 1) winners.push_back(current_.back());  // Bye.
    current_ = std::move(winners);
    return Status::OK();
  }

  MaxFindResult Finish(int64_t paid_delta) {
    result_.best = current_[0];
    result_.paid_comparisons = paid_delta;
    return std::move(result_);
  }

 private:
  int64_t votes_for_round(int64_t round) const {
    if (options_.votes_schedule.empty()) return options_.votes_per_match;
    const size_t index = std::min(static_cast<size_t>(round),
                                  options_.votes_schedule.size() - 1);
    return options_.votes_schedule[index];
  }

  const VenetisOptions& options_;
  std::vector<ElementId> current_;
  int64_t votes_ = 0;
  size_t num_matches_ = 0;
  MaxFindResult result_;
};

}  // namespace

Result<MaxFindResult> VenetisLadderMax(const std::vector<ElementId>& items,
                                       Comparator* comparator,
                                       const VenetisOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.votes_schedule.empty()) {
    if (options.votes_per_match < 1 || options.votes_per_match % 2 == 0) {
      return Status::InvalidArgument("votes_per_match must be odd and >= 1");
    }
  } else {
    for (int64_t votes : options.votes_schedule) {
      if (votes < 1 || votes % 2 == 0) {
        return Status::InvalidArgument(
            "votes_schedule entries must be odd and >= 1");
      }
    }
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  if (options.threads >= 1 && comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); the parallel ladder requires "
        "a forkable comparator");
  }

  std::unique_ptr<RoundEngine> engine;
  if (options.threads >= 1) {
    Result<std::unique_ptr<RoundEngine>> parallel = RoundEngine::CreateParallel(
        comparator, options.threads, options.parallel_seed, /*memoize=*/false);
    if (!parallel.ok()) return parallel.status();
    engine = std::move(*parallel);
  } else {
    engine = RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  }

  VenetisRoundSource source(items, options);
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

double MajorityErrorProbability(int64_t k, double p) {
  CROWDMAX_CHECK(k >= 1 && k % 2 == 1);
  CROWDMAX_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Sum the binomial tail j = (k+1)/2 .. k iteratively; exact for the
  // vote counts in play (k <= a few hundred).
  double error = 0.0;
  // C(k, j) * p^j * q^(k-j), starting at j = k and walking down.
  const double q = 1.0 - p;
  double term = std::pow(p, static_cast<double>(k));  // j = k.
  error += term;
  for (int64_t j = k - 1; j >= (k + 1) / 2; --j) {
    // term(j) = term(j+1) * C(k,j)/C(k,j+1) * q/p = term(j+1)*(j+1)/(k-j)*q/p.
    term *= static_cast<double>(j + 1) / static_cast<double>(k - j) * q / p;
    error += term;
  }
  return std::min(1.0, error);
}

Result<VenetisTuning> TuneVenetisSchedule(int64_t n, int64_t budget,
                                          double per_vote_error) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (per_vote_error < 0.0 || per_vote_error >= 0.5) {
    return Status::InvalidArgument("per_vote_error must be in [0, 0.5)");
  }
  const int64_t rounds = LadderRounds(n);
  if (budget < n - 1) {
    return Status::InvalidArgument(
        "budget must cover at least one vote per match (n - 1)");
  }

  VenetisTuning tuning;
  tuning.schedule.assign(static_cast<size_t>(rounds), 1);
  tuning.total_votes = n - 1;  // One vote per match across all rounds.

  // Greedy: add 2 votes to the round with the highest survival gain per
  // additional vote, until no upgrade fits the budget. The maximum plays
  // exactly one match per round, so survival = prod_r (1 - err(k_r)).
  // Upgrading round r costs 2 * MatchesInRound(r) votes.
  while (true) {
    double best_gain_per_vote = 0.0;
    int64_t best_round = -1;
    for (int64_t r = 0; r < rounds; ++r) {
      const int64_t cost = 2 * MatchesInRound(n, r);
      if (tuning.total_votes + cost > budget) continue;
      const int64_t k = tuning.schedule[static_cast<size_t>(r)];
      const double before = 1.0 - MajorityErrorProbability(k, per_vote_error);
      const double after =
          1.0 - MajorityErrorProbability(k + 2, per_vote_error);
      if (before <= 0.0) continue;
      // Multiplicative survival gain per vote spent.
      const double gain =
          (std::log(after) - std::log(before)) / static_cast<double>(cost);
      if (gain > best_gain_per_vote) {
        best_gain_per_vote = gain;
        best_round = r;
      }
    }
    if (best_round < 0) break;
    tuning.schedule[static_cast<size_t>(best_round)] += 2;
    tuning.total_votes += 2 * MatchesInRound(n, best_round);
  }

  tuning.predicted_max_survival = 1.0;
  for (int64_t r = 0; r < rounds; ++r) {
    tuning.predicted_max_survival *=
        1.0 - MajorityErrorProbability(tuning.schedule[static_cast<size_t>(r)],
                                       per_vote_error);
  }
  return tuning;
}

}  // namespace crowdmax
