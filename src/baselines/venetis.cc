#include "baselines/venetis.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace crowdmax {

namespace {

// Number of single-elimination rounds for n elements (byes advance free).
int64_t LadderRounds(int64_t n) {
  int64_t rounds = 0;
  while (n > 1) {
    n = (n + 1) / 2;
    ++rounds;
  }
  return rounds;
}

// Matches played in round r (0-based) of a ladder starting from n.
int64_t MatchesInRound(int64_t n, int64_t round) {
  for (int64_t r = 0; r < round; ++r) n = (n + 1) / 2;
  return n / 2;
}

}  // namespace

Result<MaxFindResult> VenetisLadderMax(const std::vector<ElementId>& items,
                                       Comparator* comparator,
                                       const VenetisOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  if (options.votes_schedule.empty()) {
    if (options.votes_per_match < 1 || options.votes_per_match % 2 == 0) {
      return Status::InvalidArgument("votes_per_match must be odd and >= 1");
    }
  } else {
    for (int64_t votes : options.votes_schedule) {
      if (votes < 1 || votes % 2 == 0) {
        return Status::InvalidArgument(
            "votes_schedule entries must be odd and >= 1");
      }
    }
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }

  auto votes_for_round = [&](int64_t round) {
    if (options.votes_schedule.empty()) return options.votes_per_match;
    const size_t index = std::min(static_cast<size_t>(round),
                                  options.votes_schedule.size() - 1);
    return options.votes_schedule[index];
  };

  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  if (options.threads >= 1 && comparator->Fork(0) == nullptr) {
    return Status::InvalidArgument(
        "comparator does not support Fork(); the parallel ladder requires "
        "a forkable comparator");
  }

  const int64_t before = comparator->num_comparisons();
  MaxFindResult result;
  std::vector<ElementId> current = items;

  // Parallel mode: one pool for the whole ladder, one fork chain seeded in
  // match order so results are independent of the thread schedule.
  std::unique_ptr<ThreadPool> pool;
  Rng seeder(options.parallel_seed);
  if (options.threads >= 1) pool = std::make_unique<ThreadPool>(options.threads);

  while (current.size() > 1) {
    const int64_t votes = votes_for_round(result.rounds);
    ++result.rounds;
    std::vector<ElementId> winners;
    winners.reserve(current.size() / 2 + 1);
    const size_t num_matches = current.size() / 2;

    if (pool != nullptr && num_matches > 0) {
      // Seeds drawn before dispatch, in match order.
      std::vector<uint64_t> seeds(num_matches);
      for (size_t m = 0; m < num_matches; ++m) seeds[m] = seeder.Fork();
      winners.resize(num_matches, -1);
      std::vector<int64_t> paid(num_matches, 0);
      pool->ParallelFor(static_cast<int64_t>(num_matches), [&](int64_t m) {
        const ElementId a = current[2 * static_cast<size_t>(m)];
        const ElementId b = current[2 * static_cast<size_t>(m) + 1];
        const std::unique_ptr<Comparator> fork =
            comparator->Fork(seeds[static_cast<size_t>(m)]);
        CROWDMAX_CHECK(fork != nullptr);
        int64_t wins_a = 0;
        for (int64_t v = 0; v < votes; ++v) {
          const ElementId winner = fork->Compare(a, b);
          CROWDMAX_DCHECK(winner == a || winner == b);
          if (winner == a) ++wins_a;
        }
        winners[static_cast<size_t>(m)] = 2 * wins_a > votes ? a : b;
        paid[static_cast<size_t>(m)] = fork->num_comparisons();
      });
      int64_t total_paid = 0;
      for (int64_t p : paid) total_paid += p;
      comparator->AddComparisons(total_paid);
      result.issued_comparisons +=
          static_cast<int64_t>(num_matches) * votes;
      if (current.size() % 2 == 1) winners.push_back(current.back());  // Bye.
    } else {
      size_t i = 0;
      for (; i + 1 < current.size(); i += 2) {
        const ElementId a = current[i];
        const ElementId b = current[i + 1];
        int64_t wins_a = 0;
        for (int64_t v = 0; v < votes; ++v) {
          const ElementId winner = comparator->Compare(a, b);
          CROWDMAX_DCHECK(winner == a || winner == b);
          ++result.issued_comparisons;
          if (winner == a) ++wins_a;
        }
        winners.push_back(2 * wins_a > votes ? a : b);
      }
      if (i < current.size()) winners.push_back(current[i]);  // Bye.
    }
    current = std::move(winners);
  }

  result.best = current[0];
  result.paid_comparisons = comparator->num_comparisons() - before;
  return result;
}

double MajorityErrorProbability(int64_t k, double p) {
  CROWDMAX_CHECK(k >= 1 && k % 2 == 1);
  CROWDMAX_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Sum the binomial tail j = (k+1)/2 .. k iteratively; exact for the
  // vote counts in play (k <= a few hundred).
  double error = 0.0;
  // C(k, j) * p^j * q^(k-j), starting at j = k and walking down.
  const double q = 1.0 - p;
  double term = std::pow(p, static_cast<double>(k));  // j = k.
  error += term;
  for (int64_t j = k - 1; j >= (k + 1) / 2; --j) {
    // term(j) = term(j+1) * C(k,j)/C(k,j+1) * q/p = term(j+1)*(j+1)/(k-j)*q/p.
    term *= static_cast<double>(j + 1) / static_cast<double>(k - j) * q / p;
    error += term;
  }
  return std::min(1.0, error);
}

Result<VenetisTuning> TuneVenetisSchedule(int64_t n, int64_t budget,
                                          double per_vote_error) {
  if (n < 2) return Status::InvalidArgument("n must be >= 2");
  if (per_vote_error < 0.0 || per_vote_error >= 0.5) {
    return Status::InvalidArgument("per_vote_error must be in [0, 0.5)");
  }
  const int64_t rounds = LadderRounds(n);
  if (budget < n - 1) {
    return Status::InvalidArgument(
        "budget must cover at least one vote per match (n - 1)");
  }

  VenetisTuning tuning;
  tuning.schedule.assign(static_cast<size_t>(rounds), 1);
  tuning.total_votes = n - 1;  // One vote per match across all rounds.

  // Greedy: add 2 votes to the round with the highest survival gain per
  // additional vote, until no upgrade fits the budget. The maximum plays
  // exactly one match per round, so survival = prod_r (1 - err(k_r)).
  // Upgrading round r costs 2 * MatchesInRound(r) votes.
  while (true) {
    double best_gain_per_vote = 0.0;
    int64_t best_round = -1;
    for (int64_t r = 0; r < rounds; ++r) {
      const int64_t cost = 2 * MatchesInRound(n, r);
      if (tuning.total_votes + cost > budget) continue;
      const int64_t k = tuning.schedule[static_cast<size_t>(r)];
      const double before = 1.0 - MajorityErrorProbability(k, per_vote_error);
      const double after =
          1.0 - MajorityErrorProbability(k + 2, per_vote_error);
      if (before <= 0.0) continue;
      // Multiplicative survival gain per vote spent.
      const double gain =
          (std::log(after) - std::log(before)) / static_cast<double>(cost);
      if (gain > best_gain_per_vote) {
        best_gain_per_vote = gain;
        best_round = r;
      }
    }
    if (best_round < 0) break;
    tuning.schedule[static_cast<size_t>(best_round)] += 2;
    tuning.total_votes += 2 * MatchesInRound(n, best_round);
  }

  tuning.predicted_max_survival = 1.0;
  for (int64_t r = 0; r < rounds; ++r) {
    tuning.predicted_max_survival *=
        1.0 - MajorityErrorProbability(tuning.schedule[static_cast<size_t>(r)],
                                       per_vote_error);
  }
  return tuning;
}

}  // namespace crowdmax
