#include "baselines/adaptive.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/round_engine.h"

namespace crowdmax {

namespace {

double EloExpectation(double rating_a, double rating_b) {
  return 1.0 / (1.0 + std::pow(10.0, (rating_b - rating_a) / 400.0));
}

// The fully-sequential extreme of the round structure: every comparison is
// its own round, because each pairing decision depends on the ratings the
// previous answer produced. The engine degenerates to batch-size-1 serial
// dispatch with no memoization (re-asking a pair is intentional here).
class AdaptiveRoundSource : public RoundSource {
 public:
  AdaptiveRoundSource(const std::vector<ElementId>& items,
                      const AdaptiveMaxOptions& options)
      : items_(items), options_(options), rng_(options.seed) {
    const size_t n = items_.size();
    // Random initial order so ids do not bias early pairings.
    order_.resize(n);
    for (size_t i = 0; i < n; ++i) order_[i] = i;
    rng_.Shuffle(&order_);
    rating_.assign(n, 0.0);
    plays_.assign(n, 0);
  }

  Result<bool> NextRound(EngineRound* round) override {
    if (spent_ >= options_.budget) return false;
    const size_t n = items_.size();
    if (warm_index_ + 1 < n) {
      // Warm-up: one pass of adjacent pairings in the shuffled order gives
      // every element at least one game.
      a_ = order_[warm_index_];
      b_ = order_[warm_index_ + 1];
      in_warmup_ = true;
    } else {
      // Main loop: leader vs the best optimistic challenger.
      const double t = static_cast<double>(spent_ + 2);
      size_t leader = 0;
      for (size_t i = 1; i < n; ++i) {
        if (rating_[i] > rating_[leader] ||
            (rating_[i] == rating_[leader] && plays_[i] < plays_[leader])) {
          leader = i;
        }
      }
      size_t challenger = leader == 0 ? 1 : 0;
      double best_score = -1e300;
      for (size_t i = 0; i < n; ++i) {
        if (i == leader) continue;
        const double bonus =
            options_.exploration *
            std::sqrt(std::log(t) / static_cast<double>(plays_[i] + 1));
        const double score = rating_[i] + bonus;
        if (score > best_score) {
          best_score = score;
          challenger = i;
        }
      }
      a_ = leader;
      b_ = challenger;
      in_warmup_ = false;
    }
    RoundUnit unit;
    unit.pairs.push_back({items_[a_], items_[b_]});
    round->units.push_back(std::move(unit));
    return true;
  }

  Status ConsumeOutcome(const EngineRound& /*round*/,
                        const RoundOutcome& outcome) override {
    ++spent_;
    if (in_warmup_) warm_index_ += 2;
    const ElementId winner = outcome.winners[0][0];
    if (winner == kUnresolvedWinner) return Status::OK();  // No evidence.
    const size_t w = winner == items_[a_] ? a_ : b_;
    const size_t l = w == a_ ? b_ : a_;
    const double expected = EloExpectation(rating_[w], rating_[l]);
    rating_[w] += options_.k_factor * (1.0 - expected);
    rating_[l] -= options_.k_factor * (1.0 - expected);
    ++plays_[w];
    ++plays_[l];
    return Status::OK();
  }

  MaxFindResult Finish(int64_t paid_delta) {
    size_t best = 0;
    for (size_t i = 1; i < items_.size(); ++i) {
      if (rating_[i] > rating_[best]) best = i;
    }
    MaxFindResult result;
    result.best = items_[best];
    result.rounds = spent_;
    result.issued_comparisons = spent_;
    result.paid_comparisons = paid_delta;
    return result;
  }

 private:
  const std::vector<ElementId>& items_;
  const AdaptiveMaxOptions& options_;
  Rng rng_;
  std::vector<size_t> order_;
  std::vector<double> rating_;
  std::vector<int64_t> plays_;
  int64_t spent_ = 0;
  size_t warm_index_ = 0;
  size_t a_ = 0;
  size_t b_ = 0;
  bool in_warmup_ = false;
};

}  // namespace

Result<MaxFindResult> AdaptiveEloMax(const std::vector<ElementId>& items,
                                     Comparator* comparator,
                                     const AdaptiveMaxOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }
  if (options.budget < static_cast<int64_t>(items.size()) - 1) {
    return Status::InvalidArgument("budget must be >= |items| - 1");
  }
  if (options.k_factor <= 0.0) {
    return Status::InvalidArgument("k_factor must be positive");
  }
  if (options.exploration < 0.0) {
    return Status::InvalidArgument("exploration must be >= 0");
  }

  if (items.size() == 1) {
    MaxFindResult result;
    result.best = items[0];
    return result;
  }

  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(comparator, /*memoize=*/false);
  AdaptiveRoundSource source(items, options);
  const int64_t paid_before = engine->paid();
  Result<DriveResult> drive = engine->Drive(&source);
  if (!drive.ok()) return drive.status();
  return source.Finish(engine->paid() - paid_before);
}

}  // namespace crowdmax
