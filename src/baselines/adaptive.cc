#include "baselines/adaptive.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace crowdmax {

namespace {

double EloExpectation(double rating_a, double rating_b) {
  return 1.0 / (1.0 + std::pow(10.0, (rating_b - rating_a) / 400.0));
}

}  // namespace

Result<MaxFindResult> AdaptiveEloMax(const std::vector<ElementId>& items,
                                     Comparator* comparator,
                                     const AdaptiveMaxOptions& options) {
  CROWDMAX_CHECK(comparator != nullptr);
  if (items.empty()) {
    return Status::InvalidArgument("input set must be non-empty");
  }
  {
    std::unordered_set<ElementId> seen;
    for (ElementId e : items) {
      if (!seen.insert(e).second) {
        return Status::InvalidArgument("duplicate element id in input");
      }
    }
  }
  if (options.budget < static_cast<int64_t>(items.size()) - 1) {
    return Status::InvalidArgument("budget must be >= |items| - 1");
  }
  if (options.k_factor <= 0.0) {
    return Status::InvalidArgument("k_factor must be positive");
  }
  if (options.exploration < 0.0) {
    return Status::InvalidArgument("exploration must be >= 0");
  }

  const size_t n = items.size();
  const int64_t before = comparator->num_comparisons();
  MaxFindResult result;
  if (n == 1) {
    result.best = items[0];
    return result;
  }

  Rng rng(options.seed);
  // Random initial order so ids do not bias early pairings.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);

  std::vector<double> rating(n, 0.0);
  std::vector<int64_t> plays(n, 0);

  // Warm-up: one pass of adjacent pairings in the shuffled order gives
  // every element at least one game.
  int64_t spent = 0;
  for (size_t i = 0; i + 1 < n && spent < options.budget; i += 2) {
    const size_t a = order[i];
    const size_t b = order[i + 1];
    const ElementId winner = comparator->Compare(items[a], items[b]);
    ++spent;
    const size_t w = winner == items[a] ? a : b;
    const size_t l = w == a ? b : a;
    const double expected = EloExpectation(rating[w], rating[l]);
    rating[w] += options.k_factor * (1.0 - expected);
    rating[l] -= options.k_factor * (1.0 - expected);
    ++plays[w];
    ++plays[l];
  }

  // Main loop: leader vs the best optimistic challenger.
  while (spent < options.budget) {
    const double t = static_cast<double>(spent + 2);
    size_t leader = 0;
    for (size_t i = 1; i < n; ++i) {
      if (rating[i] > rating[leader] ||
          (rating[i] == rating[leader] && plays[i] < plays[leader])) {
        leader = i;
      }
    }
    size_t challenger = leader == 0 ? 1 : 0;
    double best_score = -1e300;
    for (size_t i = 0; i < n; ++i) {
      if (i == leader) continue;
      const double bonus =
          options.exploration *
          std::sqrt(std::log(t) / static_cast<double>(plays[i] + 1));
      const double score = rating[i] + bonus;
      if (score > best_score) {
        best_score = score;
        challenger = i;
      }
    }

    const ElementId winner =
        comparator->Compare(items[leader], items[challenger]);
    ++spent;
    const size_t w = winner == items[leader] ? leader : challenger;
    const size_t l = w == leader ? challenger : leader;
    const double expected = EloExpectation(rating[w], rating[l]);
    rating[w] += options.k_factor * (1.0 - expected);
    rating[l] -= options.k_factor * (1.0 - expected);
    ++plays[w];
    ++plays[l];
  }

  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (rating[i] > rating[best]) best = i;
  }
  result.best = items[best];
  result.rounds = spent;
  result.issued_comparisons = spent;
  result.paid_comparisons = comparator->num_comparisons() - before;
  return result;
}

}  // namespace crowdmax
