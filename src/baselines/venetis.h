// Replicated-tournament max baseline after Venetis et al., "Max algorithms
// in crowdsourcing environments" (WWW 2012), discussed in the paper's
// related work: a static single-elimination ladder where every pairwise
// match is decided by the majority of r independent worker votes. Under the
// purely probabilistic error model replication drives per-match error down
// exponentially; under the threshold model it cannot (the motivation for
// experts).

#ifndef CROWDMAX_BASELINES_VENETIS_H_
#define CROWDMAX_BASELINES_VENETIS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/maxfind.h"

namespace crowdmax {

/// Options for the replicated ladder.
struct VenetisOptions {
  /// Independent votes per match; the match winner takes the majority.
  /// Must be odd and >= 1 so every match is decided. Ignored when
  /// `votes_schedule` is non-empty.
  int64_t votes_per_match = 3;

  /// Per-round vote counts (entry r for ladder round r, 0-based); the last
  /// entry repeats for deeper rounds. Every entry must be odd and >= 1.
  /// Venetis et al. tune exactly this kind of schedule to a budget (they
  /// use simulated annealing; TuneVenetisSchedule below uses an exact
  /// greedy allocation).
  std::vector<int64_t> votes_schedule;

  /// Parallel match engine. 0 = serial (default); >= 1 decides each ladder
  /// round's matches concurrently on a work-stealing pool, every match
  /// voting through its own Comparator::Fork child seeded in match order —
  /// bit-identical results for every threads >= 1. Requires a forkable
  /// comparator.
  int64_t threads = 0;

  /// Seed of the per-match fork chain used when threads >= 1.
  uint64_t parallel_seed = 0x9E3779B97F4A7C15ULL;
};

/// Runs the static ladder over `items` (distinct ids, non-empty): pair up
/// survivors, decide each match by majority of votes_per_match comparator
/// queries, advance winners (odd element out gets a bye), repeat until one
/// remains. Every vote is a paid comparison. Result.rounds is the number of
/// ladder levels.
Result<MaxFindResult> VenetisLadderMax(const std::vector<ElementId>& items,
                                       Comparator* comparator,
                                       const VenetisOptions& options = {});

/// P(majority of k independent votes is wrong) when each vote is wrong
/// with probability p — the binomial tail sum_{j > k/2} C(k,j) p^j
/// (1-p)^{k-j}. Requires odd k >= 1 and p in [0, 1].
double MajorityErrorProbability(int64_t k, double p);

/// A tuned per-round vote schedule for the ladder.
struct VenetisTuning {
  /// Odd vote counts per ladder round (round 0 = first, n/2 matches).
  std::vector<int64_t> schedule;
  /// Predicted probability the true maximum survives every round, under
  /// the constant per-vote error model.
  double predicted_max_survival = 0.0;
  /// Total votes the schedule spends on a full ladder over n elements.
  int64_t total_votes = 0;
};

/// Allocates a vote budget across ladder rounds to maximize the predicted
/// survival probability of the maximum, assuming every vote errs
/// independently with probability `per_vote_error` (the purely
/// probabilistic model in which replication tuning makes sense). Greedy
/// exact marginal allocation: repeatedly add 2 votes to the round with the
/// best survival gain per vote, while the budget allows. Requires n >= 2,
/// budget >= n - 1 (one vote per match) and per_vote_error in [0, 0.5).
Result<VenetisTuning> TuneVenetisSchedule(int64_t n, int64_t budget,
                                          double per_vote_error);

}  // namespace crowdmax

#endif  // CROWDMAX_BASELINES_VENETIS_H_
