// Adaptive (dynamic) max discovery baseline after Guo et al., "So who
// won?: dynamic max discovery with the crowd" (SIGMOD 2012), from the
// paper's related work: instead of a fixed comparison schedule, choose each
// next comparison based on everything observed so far, under a fixed query
// budget.
//
// This implementation keeps a Bradley-Terry-style rating per element
// (updated with Elo increments) and repeatedly pits the current leader
// against the most promising challenger by optimistic score (rating plus
// an exploration bonus shrinking with plays — the UCB principle). Under
// the purely probabilistic error model this focuses the budget on the
// contenders; under the threshold model it hits the same wall as every
// naive-only scheme, which is the paper's point.

#ifndef CROWDMAX_BASELINES_ADAPTIVE_H_
#define CROWDMAX_BASELINES_ADAPTIVE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/maxfind.h"

namespace crowdmax {

/// Options for the adaptive max-discovery baseline.
struct AdaptiveMaxOptions {
  /// Total comparisons to spend. Must be >= |items| - 1 (every element
  /// needs a chance to be compared at least once along the way).
  int64_t budget = 0;
  /// Elo update step size.
  double k_factor = 24.0;
  /// Weight of the exploration bonus (rating points added per unit of
  /// sqrt(ln(t) / plays)); 0 disables exploration.
  double exploration = 120.0;
  /// Seed for initial shuffling / tie-breaking.
  uint64_t seed = 1;
};

/// Runs the adaptive rating-based max discovery and returns the
/// highest-rated element once the budget is spent. Result.rounds reports
/// the number of comparisons issued (every query is its own "round" — the
/// algorithm is fully sequential, which is its latency cost).
Result<MaxFindResult> AdaptiveEloMax(const std::vector<ElementId>& items,
                                     Comparator* comparator,
                                     const AdaptiveMaxOptions& options);

}  // namespace crowdmax

#endif  // CROWDMAX_BASELINES_ADAPTIVE_H_
