// A small declarative layer over the max-finding algorithms — the
// "CrowdDB-style" entry point the paper's introduction motivates. The
// engine owns no workers: it is configured with one comparator per worker
// class, plans the cheapest adequate strategy (query/planner.h) and
// executes it, returning the answer together with what it actually cost.

#ifndef CROWDMAX_QUERY_ENGINE_H_
#define CROWDMAX_QUERY_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/comparator.h"
#include "core/cost.h"
#include "core/instance.h"
#include "query/planner.h"

namespace crowdmax {

/// Engine configuration: the two worker classes and their prices.
struct CrowdQueryEngineOptions {
  /// Naive worker comparator (not owned; must outlive the engine).
  Comparator* naive = nullptr;
  /// Expert worker comparator (not owned; must outlive the engine).
  Comparator* expert = nullptr;
  /// Per-comparison prices for the two classes.
  CostModel prices;
};

/// Answer of a MAX query.
struct MaxQueryAnswer {
  ElementId best = -1;
  /// The plan that was executed.
  MaxQueryPlan plan;
  /// Comparisons actually paid, by class.
  ComparisonStats paid;
  /// Actual monetary cost of the execution.
  double actual_cost = 0.0;
};

/// Answer of a TOP-K query (always executed two-phase).
struct TopKQueryAnswer {
  std::vector<ElementId> top;
  ComparisonStats paid;
  double actual_cost = 0.0;
};

/// Options for an ABOVE (selection) query.
struct AboveQueryOptions {
  /// Naive votes per item-vs-anchor comparison; odd, >= 1. Unanimous votes
  /// classify the item directly; a unanimity fluke on a hard pair happens
  /// with probability 2^(1-votes) under the fair-coin threshold model.
  int64_t votes_per_item = 5;
  /// Send items with non-unanimous votes (the likely
  /// naive-indistinguishable ones) to one expert comparison each; when
  /// false, the naive majority decides them.
  bool expert_refine = true;
};

/// Answer of an ABOVE query.
struct AboveQueryAnswer {
  /// Items classified as having a larger value than the anchor.
  std::vector<ElementId> above;
  /// Items classified as smaller.
  std::vector<ElementId> below;
  /// Items whose naive votes disagreed (escalated to experts when
  /// expert_refine is on).
  std::vector<ElementId> escalated;
  ComparisonStats paid;
  double actual_cost = 0.0;
};

/// Plans and executes crowd queries over element sets.
class CrowdQueryEngine {
 public:
  /// Validates the options; both comparators are required.
  static Result<CrowdQueryEngine> Create(
      const CrowdQueryEngineOptions& options);

  /// SELECT MAX: picks the cheapest adequate strategy for the given u_n
  /// estimate and runs it. `allow_naive_accuracy` admits the cheap
  /// 2*delta_n-approximate naive-only plan.
  Result<MaxQueryAnswer> Max(const std::vector<ElementId>& items, int64_t u_n,
                             bool allow_naive_accuracy = false);

  /// SELECT TOP k: two-phase approximate top-k (core/topk.h). `u_n` must
  /// bound the blind spot around every top-k element.
  Result<TopKQueryAnswer> TopK(const std::vector<ElementId>& items,
                               int64_t u_n, int64_t k);

  /// SELECT WHERE value > anchor (CrowdScreen-style filtering with the
  /// paper's expert twist): each item is compared against `anchor` by a
  /// naive vote panel; unanimous panels classify directly, split panels
  /// escalate to one expert judgment. Items farther than delta_n from the
  /// anchor are misclassified only by a unanimity fluke
  /// (<= 2^(1-votes) under the model); items inside delta_n are decided by
  /// the expert (within delta_e exactly when expert_refine is on).
  /// `anchor` must not appear in `items`.
  Result<AboveQueryAnswer> Above(const std::vector<ElementId>& items,
                                 ElementId anchor,
                                 const AboveQueryOptions& options = {});

 private:
  explicit CrowdQueryEngine(const CrowdQueryEngineOptions& options);

  CrowdQueryEngineOptions options_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_QUERY_ENGINE_H_
