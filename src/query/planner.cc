#include "query/planner.h"

#include <cmath>
#include <limits>

#include "common/table.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"

namespace crowdmax {

namespace {

// Average-case constants calibrated against the measurements recorded in
// EXPERIMENTS.md (uniform instances, threshold workers): phase 1 pays
// ~2.6*n*u_n, single-class 2-MaxFind ~1.7*n, and phase 2 a small multiple
// of the candidate count.
constexpr double kAvgFilterFactor = 2.6;
constexpr double kAvgTwoMaxFindFactor = 1.7;
constexpr double kAvgPhase2Factor = 2.0;

}  // namespace

std::string MaxStrategyName(MaxStrategy strategy) {
  switch (strategy) {
    case MaxStrategy::kTwoPhase:
      return "two-phase";
    case MaxStrategy::kExpertOnly:
      return "expert-only";
    case MaxStrategy::kNaiveOnly:
      return "naive-only";
  }
  return "unknown";
}

double PredictFilterComparisons(int64_t n, int64_t u_n, bool worst_case) {
  if (worst_case) {
    return static_cast<double>(FilterComparisonUpperBound(n, u_n));
  }
  return kAvgFilterFactor * static_cast<double>(n) * static_cast<double>(u_n);
}

double PredictPhase2Comparisons(int64_t u_n, bool worst_case) {
  const int64_t candidates = 2 * u_n - 1;
  if (worst_case) {
    return static_cast<double>(TwoMaxFindComparisonUpperBound(candidates));
  }
  return kAvgPhase2Factor * static_cast<double>(candidates);
}

double PredictTwoMaxFindComparisons(int64_t n, bool worst_case) {
  if (worst_case) {
    return static_cast<double>(TwoMaxFindComparisonUpperBound(n));
  }
  return kAvgTwoMaxFindFactor * static_cast<double>(n);
}

Result<MaxQueryPlan> PlanMaxQuery(const PlannerInput& input) {
  if (input.n < 1) return Status::InvalidArgument("n must be >= 1");
  if (input.u_n < 1 || input.u_n > input.n) {
    return Status::InvalidArgument("u_n must be in [1, n]");
  }
  if (!input.prices.Valid()) {
    return Status::InvalidArgument("invalid cost model");
  }

  MaxQueryPlan plan;
  plan.two_phase_cost =
      PredictFilterComparisons(input.n, input.u_n, input.worst_case) *
          input.prices.naive_cost +
      PredictPhase2Comparisons(input.u_n, input.worst_case) *
          input.prices.expert_cost;
  plan.expert_only_cost =
      PredictTwoMaxFindComparisons(input.n, input.worst_case) *
      input.prices.expert_cost;
  plan.naive_only_cost =
      input.allow_naive_accuracy
          ? PredictTwoMaxFindComparisons(input.n, input.worst_case) *
                input.prices.naive_cost
          : std::numeric_limits<double>::infinity();

  plan.strategy = MaxStrategy::kTwoPhase;
  plan.predicted_cost = plan.two_phase_cost;
  if (plan.expert_only_cost < plan.predicted_cost) {
    plan.strategy = MaxStrategy::kExpertOnly;
    plan.predicted_cost = plan.expert_only_cost;
  }
  if (plan.naive_only_cost < plan.predicted_cost) {
    plan.strategy = MaxStrategy::kNaiveOnly;
    plan.predicted_cost = plan.naive_only_cost;
  }

  plan.explanation =
      "n=" + FormatInt(input.n) + ", u_n=" + FormatInt(input.u_n) +
      ", c_e/c_n=" + FormatDouble(input.prices.Ratio(), 1) +
      (input.worst_case ? ", worst-case" : ", average-case") +
      ": two-phase=" + FormatDouble(plan.two_phase_cost, 0) +
      ", expert-only=" + FormatDouble(plan.expert_only_cost, 0) +
      (input.allow_naive_accuracy
           ? ", naive-only=" + FormatDouble(plan.naive_only_cost, 0) +
                 " (approximate)"
           : "") +
      " -> " + MaxStrategyName(plan.strategy);
  return plan;
}

}  // namespace crowdmax
