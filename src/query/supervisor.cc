#include "query/supervisor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace crowdmax {

namespace {

// The breaker's failure signal: the shard's crowd was unavailable, either
// terminally (the fault stack exhausted its budget) or softly (a partial
// result whose triggering fault was an unavailability / no-quorum streak).
// Typed admission rejections and deadline aborts are tenant problems, not
// shard-health problems, and never count.
bool IsAvailabilityFailure(const QueryOutcome& outcome) {
  if (outcome.status.code() == StatusCode::kUnavailable) return true;
  return outcome.partial &&
         outcome.fault_status.code() == StatusCode::kUnavailable;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

ServiceSupervisor::ServiceSupervisor(const SupervisorOptions& options)
    : options_(options), breakers_(options.service.shards.size()) {}

Result<ServiceSupervisor> ServiceSupervisor::Create(
    const SupervisorOptions& options) {
  // The wrapped service must itself be creatable; reuse its validation.
  Result<QueryService> service = QueryService::Create(options.service);
  if (!service.ok()) return service.status();

  const ChaosSchedule& chaos = options.chaos;
  if (chaos.kill_query_probability < 0.0 ||
      chaos.kill_query_probability > 1.0) {
    return Status::InvalidArgument(
        "kill_query_probability must be in [0, 1]");
  }
  if (chaos.min_kill_step < 1 || chaos.max_kill_step < chaos.min_kill_step) {
    return Status::InvalidArgument(
        "kill step range needs 1 <= min_kill_step <= max_kill_step");
  }
  if (chaos.max_restarts < 0) {
    return Status::InvalidArgument("max_restarts must be >= 0");
  }
  if (chaos.outage_start < 0 || chaos.outage_queries < 0) {
    return Status::InvalidArgument("outage window fields must be >= 0");
  }
  const CircuitBreakerOptions& breaker = options.breaker;
  if (breaker.failure_threshold < 1 || breaker.cooldown_queries < 1 ||
      breaker.probe_successes_to_close < 1) {
    return Status::InvalidArgument(
        "breaker thresholds/cooldown must be >= 1");
  }
  if (breaker.retry_after_steps < 0 || options.shed.retry_after_steps < 0) {
    return Status::InvalidArgument("retry_after_steps must be >= 0");
  }
  if (options.shed.max_admitted < 0) {
    return Status::InvalidArgument("max_admitted must be >= 0");
  }
  return ServiceSupervisor(options);
}

BreakerState ServiceSupervisor::breaker_state(int64_t shard) const {
  CROWDMAX_CHECK(shard >= 0 &&
                 shard < static_cast<int64_t>(breakers_.size()));
  return breakers_[static_cast<size_t>(shard)].state;
}

void ServiceSupervisor::ObserveOutcome(int64_t shard,
                                       const QueryOutcome& outcome,
                                       bool was_probe,
                                       SupervisorReport* report) {
  Breaker& breaker = breakers_[static_cast<size_t>(shard)];
  if (IsAvailabilityFailure(outcome)) {
    ++breaker.consecutive_failures;
    if (was_probe) {
      // A failed probe re-opens the breaker and restarts the cooldown.
      breaker.state = BreakerState::kOpen;
      breaker.shed_while_open = 0;
      breaker.probe_successes = 0;
      ++report->breaker_trips;
    } else if (breaker.state == BreakerState::kClosed &&
               breaker.consecutive_failures >=
                   options_.breaker.failure_threshold) {
      breaker.state = BreakerState::kOpen;
      breaker.shed_while_open = 0;
      ++report->breaker_trips;
    }
    return;
  }
  breaker.consecutive_failures = 0;
  if (was_probe) {
    ++breaker.probe_successes;
    if (breaker.probe_successes >=
        options_.breaker.probe_successes_to_close) {
      breaker.state = BreakerState::kClosed;
      breaker.probe_successes = 0;
      ++report->breaker_closes;
    }
  }
}

Result<SupervisedRunResult> ServiceSupervisor::Run(
    const std::vector<QuerySpec>& specs) {
  const int64_t count = static_cast<int64_t>(specs.size());
  SupervisedRunResult run;
  run.outcomes.resize(specs.size());
  run.report.submitted = count;

  // The chaos plan: every draw happens here, in spec order, before
  // anything executes — the plan is a pure function of (specs, seed), so
  // shedding decisions further down can never shift the kill pattern.
  Rng chaos_rng(options_.chaos.seed);
  std::vector<int64_t> kill_step(specs.size(), 0);
  if (options_.chaos.kill_query_probability > 0.0) {
    const uint64_t span = static_cast<uint64_t>(
        options_.chaos.max_kill_step - options_.chaos.min_kill_step + 1);
    for (int64_t i = 0; i < count; ++i) {
      if (!chaos_rng.NextBernoulli(options_.chaos.kill_query_probability)) {
        continue;
      }
      kill_step[static_cast<size_t>(i)] =
          options_.chaos.min_kill_step +
          static_cast<int64_t>(chaos_rng.NextBounded(span));
    }
  }

  // Shedding pass 1 — the service-wide outage window.
  std::vector<bool> runnable(specs.size(), true);
  const int64_t outage_end =
      options_.chaos.outage_start + options_.chaos.outage_queries;
  for (int64_t i = 0; i < count; ++i) {
    if (options_.chaos.outage_queries <= 0 ||
        i < options_.chaos.outage_start || i >= outage_end) {
      continue;
    }
    SupervisedOutcome& sup = run.outcomes[static_cast<size_t>(i)];
    runnable[static_cast<size_t>(i)] = false;
    sup.shed_load = true;
    ++run.report.shed_outage;
    // The hint counts down to the end of the window, in the submission
    // currency the caller controls.
    sup.outcome.status =
        Status::Unavailable(
            "service outage in progress (chaos plan); resubmit after the "
            "window")
            .WithRetryAfter(outage_end - i);
  }

  // Shedding pass 2 — the admission high watermark. The excess is shed
  // lowest fair-share weight first; among equal weights the later
  // submission goes first (it displaced the queue).
  if (options_.shed.max_admitted > 0) {
    std::vector<int64_t> candidates;
    for (int64_t i = 0; i < count; ++i) {
      if (runnable[static_cast<size_t>(i)]) candidates.push_back(i);
    }
    const int64_t excess =
        static_cast<int64_t>(candidates.size()) - options_.shed.max_admitted;
    if (excess > 0) {
      std::sort(candidates.begin(), candidates.end(),
                [&](int64_t a, int64_t b) {
                  const int64_t wa = specs[static_cast<size_t>(a)].weight;
                  const int64_t wb = specs[static_cast<size_t>(b)].weight;
                  if (wa != wb) return wa < wb;
                  return a > b;
                });
      for (int64_t s = 0; s < excess; ++s) {
        const int64_t i = candidates[static_cast<size_t>(s)];
        SupervisedOutcome& sup = run.outcomes[static_cast<size_t>(i)];
        runnable[static_cast<size_t>(i)] = false;
        sup.shed_load = true;
        ++run.report.shed_load;
        sup.outcome.status =
            Status::Unavailable(
                "admission queue above its high watermark; load shed")
                .WithRetryAfter(options_.shed.retry_after_steps);
      }
    }
  }

  // Supervised execution, strictly in spec order (the breaker state
  // machine is deterministic only under a deterministic outcome order).
  for (int64_t i = 0; i < count; ++i) {
    if (!runnable[static_cast<size_t>(i)]) continue;
    const QuerySpec& spec = specs[static_cast<size_t>(i)];
    SupervisedOutcome& sup = run.outcomes[static_cast<size_t>(i)];

    // Out-of-range shards skip the breaker and fall through to admission
    // control, which rejects them with a typed kInvalidArgument.
    const bool shard_ok =
        spec.shard >= 0 &&
        spec.shard < static_cast<int64_t>(breakers_.size());
    Breaker* breaker =
        shard_ok ? &breakers_[static_cast<size_t>(spec.shard)] : nullptr;

    bool probe = false;
    if (breaker != nullptr && breaker->state == BreakerState::kOpen) {
      if (breaker->shed_while_open < options_.breaker.cooldown_queries) {
        ++breaker->shed_while_open;
        sup.shed_breaker = true;
        ++run.report.shed_breaker;
        sup.outcome.status =
            Status::Unavailable("circuit breaker open for shard " +
                                std::to_string(spec.shard))
                .WithRetryAfter(options_.breaker.retry_after_steps);
        continue;
      }
      breaker->state = BreakerState::kHalfOpen;
      breaker->probe_successes = 0;
    }
    if (breaker != nullptr && breaker->state == BreakerState::kHalfOpen) {
      probe = true;
      sup.probe = true;
      ++run.report.breaker_probes;
    }

    // Graceful degradation: a not-closed breaker relaxes the recovery
    // policy instead of (or after) shedding. Only the quorum/fallback
    // policy changes — elimination still requires counted losses, so the
    // Lemma 1 guarantee survives degradation.
    QueryServiceOptions service_options = options_.service;
    if (options_.degrade.enabled && breaker != nullptr &&
        breaker->state != BreakerState::kClosed) {
      service_options.resilient = options_.degrade.degraded;
      sup.degraded = true;
      ++run.report.degraded_runs;
    }

    QuerySpec attempt = spec;
    attempt.kill_after_steps = kill_step[static_cast<size_t>(i)];
    Result<QueryOutcome> outcome =
        QueryService::ExecuteAlone(service_options, attempt);
    if (!outcome.ok()) return outcome.status();
    sup.outcome = std::move(*outcome);
    ++run.report.executed;

    if (attempt.kill_after_steps > 0 &&
        sup.outcome.status.code() == StatusCode::kAborted) {
      sup.kills = 1;
      ++run.report.killed;
      // Recovery by deterministic re-execution: the tenant stack is
      // hermetically seeded, so the re-run reproduces the uninterrupted
      // run bit-for-bit (the contract tests/chaos_test.cc asserts).
      QuerySpec retry = spec;
      retry.kill_after_steps = 0;
      bool recovered = false;
      for (int64_t r = 0; r < options_.chaos.max_restarts && !recovered;
           ++r) {
        Result<QueryOutcome> again =
            QueryService::ExecuteAlone(service_options, retry);
        if (!again.ok()) return again.status();
        ++sup.restarts;
        sup.outcome = std::move(*again);
        recovered = sup.outcome.status.code() != StatusCode::kAborted;
      }
      if (recovered) {
        ++run.report.recovered;
      } else {
        ++run.report.unrecovered;
      }
    }

    if (sup.outcome.status.ok()) ++run.report.completed;
    // Only executed, admitted queries describe shard health; typed
    // admission rejections never move the breaker.
    if (breaker != nullptr && sup.outcome.admitted) {
      ObserveOutcome(spec.shard, sup.outcome, probe, &run.report);
    }
  }
  return run;
}

}  // namespace crowdmax
