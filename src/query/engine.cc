#include "query/engine.h"

#include <utility>

#include "baselines/single_class.h"
#include "core/expert_max.h"
#include "core/topk.h"

namespace crowdmax {

CrowdQueryEngine::CrowdQueryEngine(const CrowdQueryEngineOptions& options)
    : options_(options) {}

Result<CrowdQueryEngine> CrowdQueryEngine::Create(
    const CrowdQueryEngineOptions& options) {
  if (options.naive == nullptr || options.expert == nullptr) {
    return Status::InvalidArgument("both worker classes are required");
  }
  if (!options.prices.Valid()) {
    return Status::InvalidArgument("invalid cost model");
  }
  return CrowdQueryEngine(options);
}

Result<MaxQueryAnswer> CrowdQueryEngine::Max(
    const std::vector<ElementId>& items, int64_t u_n,
    bool allow_naive_accuracy) {
  if (items.empty()) {
    return Status::InvalidArgument("item set must be non-empty");
  }

  PlannerInput planner_input;
  planner_input.n = static_cast<int64_t>(items.size());
  planner_input.u_n = u_n;
  planner_input.prices = options_.prices;
  planner_input.allow_naive_accuracy = allow_naive_accuracy;
  Result<MaxQueryPlan> plan = PlanMaxQuery(planner_input);
  if (!plan.ok()) return plan.status();

  MaxQueryAnswer answer;
  answer.plan = *plan;
  switch (plan->strategy) {
    case MaxStrategy::kTwoPhase: {
      ExpertMaxOptions options;
      options.filter.u_n = u_n;
      Result<ExpertMaxResult> run = FindMaxWithExperts(
          items, options_.naive, options_.expert, options);
      if (!run.ok()) return run.status();
      answer.best = run->best;
      answer.paid = run->paid;
      break;
    }
    case MaxStrategy::kExpertOnly: {
      Result<SingleClassResult> run =
          TwoMaxFindExpertOnly(items, options_.expert);
      if (!run.ok()) return run.status();
      answer.best = run->best;
      answer.paid.expert = run->paid_comparisons;
      break;
    }
    case MaxStrategy::kNaiveOnly: {
      Result<SingleClassResult> run =
          TwoMaxFindNaiveOnly(items, options_.naive);
      if (!run.ok()) return run.status();
      answer.best = run->best;
      answer.paid.naive = run->paid_comparisons;
      break;
    }
  }
  answer.actual_cost =
      options_.prices.Cost(answer.paid.naive, answer.paid.expert);
  return answer;
}

Result<AboveQueryAnswer> CrowdQueryEngine::Above(
    const std::vector<ElementId>& items, ElementId anchor,
    const AboveQueryOptions& options) {
  if (items.empty()) {
    return Status::InvalidArgument("item set must be non-empty");
  }
  if (options.votes_per_item < 1 || options.votes_per_item % 2 == 0) {
    return Status::InvalidArgument("votes_per_item must be odd and >= 1");
  }

  const int64_t naive_before = options_.naive->num_comparisons();
  const int64_t expert_before = options_.expert->num_comparisons();

  AboveQueryAnswer answer;
  for (ElementId item : items) {
    if (item == anchor) {
      return Status::InvalidArgument("anchor must not appear in items");
    }
    int64_t wins_item = 0;
    for (int64_t v = 0; v < options.votes_per_item; ++v) {
      if (options_.naive->Compare(item, anchor) == item) ++wins_item;
    }
    const bool unanimous =
        wins_item == 0 || wins_item == options.votes_per_item;
    bool is_above = 2 * wins_item > options.votes_per_item;
    if (!unanimous) {
      answer.escalated.push_back(item);
      if (options.expert_refine) {
        is_above = options_.expert->Compare(item, anchor) == item;
      }
    }
    (is_above ? answer.above : answer.below).push_back(item);
  }

  answer.paid.naive = options_.naive->num_comparisons() - naive_before;
  answer.paid.expert = options_.expert->num_comparisons() - expert_before;
  answer.actual_cost =
      options_.prices.Cost(answer.paid.naive, answer.paid.expert);
  return answer;
}

Result<TopKQueryAnswer> CrowdQueryEngine::TopK(
    const std::vector<ElementId>& items, int64_t u_n, int64_t k) {
  TopKOptions options;
  options.k = k;
  options.filter.u_n = u_n;
  Result<TopKResult> run =
      FindTopKWithExperts(items, options_.naive, options_.expert, options);
  if (!run.ok()) return run.status();

  TopKQueryAnswer answer;
  answer.top = std::move(run->top);
  answer.paid = run->paid;
  answer.actual_cost =
      options_.prices.Cost(answer.paid.naive, answer.paid.expert);
  return answer;
}

}  // namespace crowdmax
