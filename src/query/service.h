// Multi-tenant crowd query service: many concurrent MAX / TOP-K / ABOVE
// queries multiplexed over one shared execution stack.
//
// The paper's algorithms answer one query; a deployment answers thousands
// at once, one per tenant/dataset shard, and the crowd platform's batch
// capacity — not CPU — is the bottleneck (cf. the LTFB idiom of shard-local
// runs with a global accounting barrier, and Braverman–Mao–Weinberg's
// round-complexity view of parallel noisy selection: rounds are the unit
// both of latency and of contention). QueryService owns the shared pieces:
// one ThreadPool driving queries, one FairShareScheduler arbitrating crowd
// batch slots, one SharedPairCache per shard for cross-query evidence
// reuse, and one merged trace + MetricsAuditor report per service run.
//
// Determinism contract (the property the test suite leans on). Every
// query's randomized state — worker models, platform, fault and latency
// streams — is private to the query and seeded from QuerySpec::seed alone
// (hermetic per-tenant stacks; see StreamSeed). The scheduler arbitrates
// only *when* a batch may submit, never what it contains, and a tenant's
// deadline is charged against its own grant count, never wall clock. Any
// scheduler interleaving is therefore result-neutral: per-query results,
// traces, paid/issued counters, budget stops and deadline aborts are
// bit-identical to running the same spec alone on the serial drive
// (ExecuteAlone) at any thread count. Wall-clock latency and the
// scheduler wait statistics are explicitly informational — they are the
// only fields allowed to vary between runs.
//
// Cross-query evidence sharing (QuerySpec::share_cache) keeps the contract
// by construction: queries that opt into a shard's SharedPairCache are
// chained into one execution unit and run sequentially in spec order, so
// the cache observes a deterministic request sequence. Queries that do not
// opt in never touch a shared cache and stay independent.
//
// Scheduler policy: stride-based weighted round-robin over the tenants
// currently waiting for a batch slot (capacity slots; each grant covers
// one batch submission). A waiting tenant with a deadline within
// deadline_boost_margin grants of expiry preempts the stride order
// (smallest remaining first). Without urgent tenants, a ready tenant of
// weight w_t waits at most sum_o ceil(w_o / w_t) + T grants to other
// tenants before being served (T = waiting tenants) — the starvation
// bound asserted by the test suite. Admission control rejects, with typed
// statuses, queries whose predicted cost exceeds their budget
// (kResourceExhausted) or whose structural minimum of batch steps already
// exceeds their deadline (kDeadlineExceeded); a deadline that expires
// mid-run aborts the query with kDeadlineExceeded at the next submission.

#ifndef CROWDMAX_QUERY_SERVICE_H_
#define CROWDMAX_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/batched.h"
#include "core/cost.h"
#include "core/instance.h"
#include "core/resilient.h"
#include "core/round_engine.h"
#include "core/trace.h"
#include "platform/platform.h"
#include "query/engine.h"
#include "query/planner.h"

namespace crowdmax {

/// One dataset shard served by the service. The instance doubles as the
/// worker models' ground truth (and, in platform mode, as the gold truth).
/// Not owned; must outlive the service.
struct ServiceShard {
  const Instance* instance = nullptr;
  /// Naive-class threshold delta_n (comparator mode).
  double delta_naive = 0.0;
  /// Expert-class threshold delta_e (comparator mode).
  double delta_expert = 0.0;
};

/// Query type of a tenant's request.
enum class QueryKind { kMax, kTopK, kAbove };

/// Stable name ("max", "topk", "above") for reports.
const char* QueryKindName(QueryKind kind);

/// One tenant's query: what to compute, over which shard, under which
/// budget/deadline, from which seed.
struct QuerySpec {
  /// Tenant label for reports (not an identity: each spec is one tenant).
  std::string tenant;
  /// Index into QueryServiceOptions::shards.
  int64_t shard = 0;
  QueryKind kind = QueryKind::kMax;
  /// The paper's u_n estimate (kMax/kTopK).
  int64_t u_n = 1;
  /// kTopK: number of top elements.
  int64_t k = 1;
  /// kAbove: the anchor element (must be a valid element of the shard).
  ElementId anchor = -1;
  /// kAbove options (vote panel size, expert escalation).
  AboveQueryOptions above;
  /// kMax: admit the 2*delta_n-approximate naive-only plan.
  bool allow_naive_accuracy = false;
  /// Root seed of the tenant's hermetic stack (see StreamSeed).
  uint64_t seed = 1;
  /// Per-comparison prices used for planning and cost reporting.
  CostModel prices;
  /// Monetary budget; 0 = unlimited. Admission control rejects the query
  /// (kResourceExhausted) when the planner's predicted cost exceeds it.
  double budget = 0.0;
  /// Hard cap on paid naive-phase comparisons, enforced by the engine's
  /// budget gate at round boundaries (FilterOptions::max_comparisons);
  /// 0 = unlimited.
  int64_t max_comparisons = 0;
  /// Deadline in scheduler grants (batch submissions); 0 = none. Charged
  /// against this query's own submissions only, so enforcement is
  /// deterministic under any interleaving.
  int64_t deadline_steps = 0;
  /// Fair-share weight (>= 1): relative share of crowd batch slots.
  int64_t weight = 1;
  /// Opt into the shard's cross-query SharedPairCache. Sharing queries of
  /// one shard are chained sequentially in spec order (see file comment).
  bool share_cache = false;
  /// Chaos hook (query/supervisor.h): abort this query with a typed
  /// kAborted after this many scheduler grants (batch submissions),
  /// simulating a crash at a clean submission boundary. Enforced like the
  /// deadline — against the tenant's own grant count only, so the kill
  /// point is deterministic under any interleaving. 0 = never.
  int64_t kill_after_steps = 0;
};

/// Service configuration: the shards and the shared stack.
struct QueryServiceOptions {
  std::vector<ServiceShard> shards;
  /// Pool threads driving queries (>= 1). Results never depend on it.
  int64_t threads = 1;
  /// Concurrent crowd batch slots the scheduler hands out (>= 1).
  int64_t capacity = 4;
  /// Deadline boost: a waiting tenant within this many grants of its
  /// deadline preempts the stride order.
  int64_t deadline_boost_margin = 2;
  /// Collect a per-query AlgoTrace and build the merged service trace
  /// (ServiceRunResult::merged_trace) for the auditor.
  bool collect_traces = false;
  /// >1: kMax two-phase filters run on the pipelined engine with this
  /// max_in_flight (one engine round per disjoint group). Step accounting
  /// moves to per-group granularity; results are unchanged.
  int64_t pipeline_depth = 1;

  /// Simulated-platform execution: each query gets a private seeded
  /// CrowdPlatform (fault + latency models below) with naive_votes /
  /// expert_votes PlatformBatchExecutors wrapped in ResilientBatchExecutor.
  /// Off (default): direct ThresholdComparator execution per
  /// ServiceShard::delta_* — the paper's noise model, no faults.
  bool use_platform = false;
  int64_t platform_workers = 40;
  double spammer_fraction = 0.0;
  double honest_slip_probability = 0.0;
  int64_t naive_votes = 3;
  int64_t expert_votes = 7;
  /// Fault injection; per-tenant seeds are derived from the tenant seed
  /// (the `seed` fields here are ignored).
  FaultOptions fault;
  /// Latency simulation; per-tenant seeds derived likewise.
  LatencyOptions latency;
  /// Recovery policy of the per-tenant resilient layer (platform mode).
  ResilientOptions resilient;
};

/// Per-tenant scheduler statistics. Informational: *not* covered by the
/// determinism contract (waits depend on the thread schedule).
struct SchedulerStats {
  /// Batch slots granted to this tenant (== its batch submissions).
  int64_t grants = 0;
  /// Acquire calls that had to wait for a slot or for their turn.
  int64_t waits = 0;
  /// Maximum number of grants handed to other tenants between this
  /// tenant entering Acquire and being served (the starvation measure).
  int64_t max_grants_behind = 0;
};

/// Fair-share arbitration of crowd batch slots: stride-based weighted
/// round-robin with a deadline boost (see the file comment for the policy
/// and the starvation bound). Thread-safe; Acquire blocks.
class FairShareScheduler {
 public:
  FairShareScheduler(int64_t capacity, int64_t deadline_boost_margin);

  /// Adds a tenant with the given weight (>= 1), deadline (0 = none) and
  /// chaos kill point (0 = none); returns its id. Not thread-safe against
  /// Acquire/Release — register every tenant before scheduling starts.
  int64_t Register(int64_t weight, int64_t deadline_steps,
                   int64_t kill_after_steps = 0);

  /// Blocks until a batch slot is granted to `tenant`, or returns
  /// kDeadlineExceeded when the tenant's grant count has reached its
  /// deadline, or kAborted when its armed chaos kill point is reached (the
  /// slot is then not taken). Deterministic per tenant: both decisions
  /// depend only on the tenant's own grant count.
  Status Acquire(int64_t tenant);

  /// Returns the slot taken by the last successful Acquire of `tenant`.
  void Release(int64_t tenant);

  SchedulerStats stats(int64_t tenant) const;

 private:
  struct Tenant {
    int64_t weight = 1;
    int64_t deadline_steps = 0;
    int64_t kill_after_steps = 0;
    uint64_t pass = 0;    // Stride position; lower = next in line.
    uint64_t stride = 1;  // kStrideScale / weight.
    bool waiting = false;
    SchedulerStats stats;
    int64_t grants_at_wait_start = 0;  // Global grant count at wait entry.
  };

  /// The waiting tenant the next free slot belongs to, or -1. Caller
  /// holds mu_.
  int64_t PickNext() const;

  const int64_t capacity_;
  const int64_t boost_margin_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Tenant> tenants_;
  int64_t in_use_ = 0;
  int64_t total_grants_ = 0;
};

/// Decorator that routes every batch submission of one tenant through the
/// scheduler: Acquire before the inner executor runs, Release after. Sits
/// directly above the innermost real executor (below the resilient layer,
/// so every retry attempt is a scheduled submission). Records no trace
/// cells and forwards latency/fault accessors; the only result-visible
/// effect is the typed kDeadlineExceeded it returns when the tenant's
/// deadline expires, which aborts the engine drive. Does not own anything.
class ScheduledBatchExecutor : public BatchExecutor {
 public:
  ScheduledBatchExecutor(BatchExecutor* inner, FairShareScheduler* scheduler,
                         int64_t tenant);

  const FaultReport* fault_report() const override {
    return inner_->fault_report();
  }
  int64_t TakeSimulatedLatencyMicros() override {
    return inner_->TakeSimulatedLatencyMicros();
  }

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;
  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override;
  /// The inner executor records the dispatched/outcome cells; the gate
  /// buys nothing itself.
  bool RecordsTraceCells() const override { return false; }

  BatchExecutor* inner_;
  FairShareScheduler* scheduler_;
  int64_t tenant_;
};

/// Everything one query produced. All fields except latency_micros and
/// `scheduler` are covered by the determinism contract.
struct QueryOutcome {
  /// OK, a typed admission rejection (kResourceExhausted /
  /// kDeadlineExceeded / kInvalidArgument, with admitted == false), or a
  /// typed runtime failure (kDeadlineExceeded mid-run, or a fault-stack
  /// error).
  Status status;
  bool admitted = false;

  /// kMax answer (also the naive majority winner count carrier for
  /// kAbove's escalations).
  ElementId best = -1;
  /// kTopK answer, in decreasing estimated-rank order.
  std::vector<ElementId> top;
  /// kAbove answer.
  std::vector<ElementId> above;
  std::vector<ElementId> below;
  std::vector<ElementId> escalated;
  /// kMax: the plan that was (or would have been) executed.
  MaxQueryPlan plan;

  /// Paid comparisons per class, read from the innermost executors — so
  /// they are filled (with the true spend) even for aborted queries.
  ComparisonStats paid;
  /// Issued comparisons (cache hits included) where the algorithm reports
  /// them (kMax); otherwise equal to paid.
  ComparisonStats issued;
  /// Monetary cost of `paid` under the spec's prices.
  double cost = 0.0;
  int64_t naive_steps = 0;
  int64_t expert_steps = 0;
  /// Pairs answered from caches: issued - paid.
  int64_t cache_hits = 0;
  bool stopped_by_budget = false;
  /// Fault-stack degradation (partial results; see core/batched.h).
  bool partial = false;
  Status fault_status;

  /// Platform-mode fault tallies of the tenant's private platform, for the
  /// merged audit.
  int64_t platform_dropped_tasks = 0;
  int64_t platform_no_quorum_tasks = 0;

  /// Scheduler view of this tenant (informational).
  SchedulerStats scheduler;
  /// Wall-clock execution time (informational).
  int64_t latency_micros = 0;

  /// The per-query trace (collect_traces only) and its deterministic
  /// rendering. The summary — not the pointer — is what equivalence tests
  /// compare.
  std::shared_ptr<AlgoTrace> trace;
  std::string trace_summary;
};

/// Aggregates of one service run, accumulated in spec order.
struct ServiceReport {
  int64_t queries = 0;
  int64_t admitted = 0;
  int64_t rejected_budget = 0;
  int64_t rejected_deadline = 0;
  int64_t rejected_invalid = 0;
  /// Admitted queries aborted mid-run by an expired deadline.
  int64_t aborted_deadline = 0;
  /// Admitted queries killed mid-run by an armed chaos kill switch
  /// (QuerySpec::kill_after_steps); recoverable by re-execution.
  int64_t aborted_chaos = 0;
  /// Admitted queries that finished with an OK status.
  int64_t completed = 0;
  /// Completed-or-aborted queries flagged partial by the fault stack.
  int64_t partial = 0;
  ComparisonStats paid;
  double spend = 0.0;
  int64_t cache_hits = 0;
  int64_t logical_steps = 0;
  int64_t scheduler_grants = 0;
  int64_t scheduler_waits = 0;
  int64_t max_grants_behind = 0;
  int64_t dropped_tasks = 0;
  int64_t no_quorum_tasks = 0;
};

/// Result of QueryService::Run: per-spec outcomes (aligned with the input)
/// plus the merged accounting.
struct ServiceRunResult {
  std::vector<QueryOutcome> outcomes;
  ServiceReport report;
  /// Merged service-level trace (collect_traces only): every per-query
  /// trace replayed, in spec order, into one trace — one run span per
  /// query, cells re-recorded under their original phase/round keys — so
  /// a single MetricsAuditor reconciles the whole service run. Its
  /// Summary() is deterministic across thread counts. Null when traces
  /// were off.
  std::shared_ptr<AlgoTrace> merged_trace;
};

/// Reconciles a service run's merged trace against the independent
/// tallies: the per-cell identity dispatched = answered + no_quorum +
/// dropped, per-class dispatched totals vs. the summed innermost-executor
/// counters (== summed paid stats), and the combined platform fault
/// tallies vs. the trace's dropped / no-quorum outcomes. Requires
/// collect_traces (FailedPrecondition otherwise).
Status AuditServiceRun(const ServiceRunResult& run);

/// The multi-tenant query service. Create once, Run any number of times;
/// each Run is an independent, deterministically replayable unit (shard
/// caches are per-Run, so runs do not leak evidence into each other).
class QueryService {
 public:
  /// Validates the options (shards present and non-null, threads/capacity
  /// >= 1, odd vote counts in platform mode).
  static Result<QueryService> Create(const QueryServiceOptions& options);

  /// Plans, admits and executes every spec. Admission is serial in spec
  /// order; admitted queries execute concurrently on the pool under the
  /// fair-share scheduler. Per-spec failures (rejections, aborts, fault
  /// exhaustion) land in the outcome's status; the call itself fails only
  /// on malformed service state.
  Result<ServiceRunResult> Run(const std::vector<QuerySpec>& specs);

  /// The serial-alone baseline of the determinism contract: runs one spec
  /// on a single-tenant service with the same options (threads = 1, full
  /// capacity, no cross-query cache). Bit-identical to the spec's outcome
  /// in any concurrent Run, except the informational fields.
  static Result<QueryOutcome> ExecuteAlone(const QueryServiceOptions& options,
                                           const QuerySpec& spec);

  /// Derives the seed of one of a tenant's private RNG streams from the
  /// tenant's root seed (SplitMix64-style). Stream ids: 1 naive worker,
  /// 2 expert worker, 3 crowd model, 4 platform, 5 fault, 6 latency.
  static uint64_t StreamSeed(uint64_t root, uint64_t stream);

  const QueryServiceOptions& options() const { return options_; }

 private:
  explicit QueryService(const QueryServiceOptions& options);

  QueryServiceOptions options_;
};

}  // namespace crowdmax

#endif  // CROWDMAX_QUERY_SERVICE_H_
