#include "query/service.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/async_executor.h"
#include "core/maxfind.h"
#include "core/resilient.h"
#include "core/worker_model.h"

namespace crowdmax {

namespace {

// Stride scale: large enough that kStrideScale / weight keeps distinct
// weights distinct, small enough that passes never overflow in practice.
constexpr uint64_t kStrideScale = 1ULL << 20;

Counter* ServiceCounter(const char* name) {
  return MetricsRegistry::Default()->GetCounter(name);
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kMax:
      return "max";
    case QueryKind::kTopK:
      return "topk";
    case QueryKind::kAbove:
      return "above";
  }
  return "unknown";
}

// ------------------------------------------------------- FairShareScheduler.

FairShareScheduler::FairShareScheduler(int64_t capacity,
                                       int64_t deadline_boost_margin)
    : capacity_(std::max<int64_t>(1, capacity)),
      boost_margin_(std::max<int64_t>(0, deadline_boost_margin)) {}

int64_t FairShareScheduler::Register(int64_t weight, int64_t deadline_steps,
                                     int64_t kill_after_steps) {
  CROWDMAX_CHECK(weight >= 1);
  Tenant tenant;
  tenant.weight = weight;
  tenant.deadline_steps = std::max<int64_t>(0, deadline_steps);
  tenant.kill_after_steps = std::max<int64_t>(0, kill_after_steps);
  tenant.stride = kStrideScale / static_cast<uint64_t>(weight);
  if (tenant.stride == 0) tenant.stride = 1;
  tenants_.push_back(tenant);
  return static_cast<int64_t>(tenants_.size()) - 1;
}

int64_t FairShareScheduler::PickNext() const {
  // Deadline boost first: among urgent waiters, smallest remaining wins.
  int64_t urgent = -1;
  int64_t urgent_remaining = 0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (!t.waiting || t.deadline_steps <= 0) continue;
    const int64_t remaining = t.deadline_steps - t.stats.grants;
    if (remaining > boost_margin_) continue;
    if (urgent < 0 || remaining < urgent_remaining) {
      urgent = static_cast<int64_t>(i);
      urgent_remaining = remaining;
    }
  }
  if (urgent >= 0) return urgent;

  // Stride order: the waiting tenant with the smallest pass (ties go to
  // the lowest id, so the pick is deterministic given the waiter set).
  int64_t best = -1;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (!t.waiting) continue;
    if (best < 0 || t.pass < tenants_[static_cast<size_t>(best)].pass) {
      best = static_cast<int64_t>(i);
    }
  }
  return best;
}

Status FairShareScheduler::Acquire(int64_t tenant) {
  std::unique_lock<std::mutex> lock(mu_);
  CROWDMAX_CHECK(tenant >= 0 &&
                 tenant < static_cast<int64_t>(tenants_.size()));
  Tenant& t = tenants_[static_cast<size_t>(tenant)];
  // Deterministic deadline enforcement: the decision depends only on this
  // tenant's own grant count (its batch submissions so far), never on the
  // other tenants' schedule.
  if (t.deadline_steps > 0 && t.stats.grants >= t.deadline_steps) {
    return Status::DeadlineExceeded(
        "tenant " + std::to_string(tenant) + " spent its deadline of " +
        std::to_string(t.deadline_steps) + " batch steps");
  }
  // Chaos kill switch: same per-tenant determinism as the deadline, but a
  // distinct code — the query was deliberately crashed at a clean
  // submission boundary and can be recovered by re-execution (its stack is
  // hermetically seeded) or by checkpoint resume.
  if (t.kill_after_steps > 0 && t.stats.grants >= t.kill_after_steps) {
    return Status::Aborted("chaos kill switch fired for tenant " +
                           std::to_string(tenant) + " after " +
                           std::to_string(t.kill_after_steps) +
                           " batch steps")
        .WithRetryAfter(1);
  }

  // Joining the queue: advance the pass to the floor so a long-idle tenant
  // cannot bank credit and monopolize the slots once it wakes.
  uint64_t floor = 0;
  bool any = false;
  for (const Tenant& other : tenants_) {
    if (!other.waiting) continue;
    if (!any || other.pass < floor) floor = other.pass;
    any = true;
  }
  if (any) t.pass = std::max(t.pass, floor);
  t.waiting = true;
  t.grants_at_wait_start = total_grants_;

  if (in_use_ >= capacity_ || PickNext() != tenant) {
    ++t.stats.waits;
    cv_.wait(lock,
             [&] { return in_use_ < capacity_ && PickNext() == tenant; });
  }

  t.waiting = false;
  const int64_t behind = total_grants_ - t.grants_at_wait_start;
  t.stats.max_grants_behind = std::max(t.stats.max_grants_behind, behind);
  ++t.stats.grants;
  ++total_grants_;
  t.pass += t.stride;
  ++in_use_;
  // The pick order changed; other waiters re-evaluate their predicates.
  cv_.notify_all();
  return Status::OK();
}

void FairShareScheduler::Release(int64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  CROWDMAX_CHECK(tenant >= 0 &&
                 tenant < static_cast<int64_t>(tenants_.size()));
  CROWDMAX_CHECK(in_use_ > 0);
  --in_use_;
  cv_.notify_all();
}

SchedulerStats FairShareScheduler::stats(int64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  CROWDMAX_CHECK(tenant >= 0 &&
                 tenant < static_cast<int64_t>(tenants_.size()));
  return tenants_[static_cast<size_t>(tenant)].stats;
}

// --------------------------------------------------- ScheduledBatchExecutor.

ScheduledBatchExecutor::ScheduledBatchExecutor(BatchExecutor* inner,
                                               FairShareScheduler* scheduler,
                                               int64_t tenant)
    : inner_(inner), scheduler_(scheduler), tenant_(tenant) {
  CROWDMAX_CHECK(inner != nullptr);
  CROWDMAX_CHECK(scheduler != nullptr);
}

std::vector<ElementId> ScheduledBatchExecutor::DoExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return {};
  // The engine drives executors through the fallible path; this path has
  // no error channel, so a deadline here is a misuse of the gate.
  const Status acquired = scheduler_->Acquire(tenant_);
  CROWDMAX_CHECK(acquired.ok());
  std::vector<ElementId> winners = inner_->ExecuteBatch(tasks);
  scheduler_->Release(tenant_);
  return winners;
}

Result<std::vector<BatchTaskResult>> ScheduledBatchExecutor::DoTryExecuteBatch(
    const std::vector<ComparisonPair>& tasks) {
  if (tasks.empty()) return inner_->TryExecuteBatch(tasks);
  Status acquired = scheduler_->Acquire(tenant_);
  if (!acquired.ok()) return acquired;
  Result<std::vector<BatchTaskResult>> result =
      inner_->TryExecuteBatch(tasks);
  scheduler_->Release(tenant_);
  return result;
}

// ------------------------------------------------------------ QueryService.

uint64_t QueryService::StreamSeed(uint64_t root, uint64_t stream) {
  // SplitMix64 over root + stream: adjacent roots and streams land in
  // unrelated parts of the sequence, so tenant stacks never share draws.
  uint64_t z = root + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

QueryService::QueryService(const QueryServiceOptions& options)
    : options_(options) {}

Result<QueryService> QueryService::Create(const QueryServiceOptions& options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("service needs at least one shard");
  }
  for (const ServiceShard& shard : options.shards) {
    if (shard.instance == nullptr || shard.instance->empty()) {
      return Status::InvalidArgument(
          "every shard needs a non-empty instance");
    }
    if (shard.delta_naive < 0.0 || shard.delta_expert < 0.0) {
      return Status::InvalidArgument("shard deltas must be >= 0");
    }
  }
  if (options.threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (options.capacity < 1) {
    return Status::InvalidArgument("capacity must be >= 1");
  }
  if (options.pipeline_depth < 1) {
    return Status::InvalidArgument("pipeline_depth must be >= 1");
  }
  if (options.use_platform) {
    if (options.naive_votes < 1 || options.expert_votes < 1) {
      return Status::InvalidArgument("vote counts must be >= 1");
    }
    if (options.platform_workers <
        std::max(options.naive_votes, options.expert_votes)) {
      return Status::InvalidArgument(
          "platform_workers must cover the largest vote count");
    }
  }
  return QueryService(options);
}

namespace {

// Admission decision for one spec: a typed rejection status, or OK plus
// the plan (kMax) that execution will follow.
struct Admission {
  Status status;
  MaxQueryPlan plan;
};

Admission AdmitSpec(const QueryServiceOptions& options,
                    const QuerySpec& spec) {
  Admission admission;
  if (spec.shard < 0 ||
      spec.shard >= static_cast<int64_t>(options.shards.size())) {
    admission.status = Status::InvalidArgument("shard index out of range");
    return admission;
  }
  const Instance* instance =
      options.shards[static_cast<size_t>(spec.shard)].instance;
  const int64_t n = instance->size();
  if (spec.weight < 1) {
    admission.status = Status::InvalidArgument("weight must be >= 1");
    return admission;
  }
  if (spec.budget < 0.0 || spec.max_comparisons < 0 ||
      spec.deadline_steps < 0) {
    admission.status =
        Status::InvalidArgument("budget/deadline fields must be >= 0");
    return admission;
  }
  if (!spec.prices.Valid()) {
    admission.status = Status::InvalidArgument("invalid prices");
    return admission;
  }

  // Predicted cost of the chosen strategy, and the structural minimum of
  // batch steps the query cannot run below.
  double predicted_cost = 0.0;
  int64_t min_steps = 1;
  switch (spec.kind) {
    case QueryKind::kMax: {
      PlannerInput input;
      input.n = n;
      input.u_n = spec.u_n;
      input.prices = spec.prices;
      input.allow_naive_accuracy = spec.allow_naive_accuracy;
      Result<MaxQueryPlan> plan = PlanMaxQuery(input);
      if (!plan.ok()) {
        admission.status = plan.status();
        return admission;
      }
      admission.plan = *plan;
      predicted_cost = plan->predicted_cost;
      // A two-phase run that actually filters needs a naive batch and an
      // expert batch.
      min_steps = (plan->strategy == MaxStrategy::kTwoPhase &&
                   n > 2 * spec.u_n - 1)
                      ? 2
                      : 1;
      break;
    }
    case QueryKind::kTopK: {
      if (spec.k < 1 || spec.k > n) {
        admission.status = Status::InvalidArgument("k must be in [1, n]");
        return admission;
      }
      if (spec.u_n < 1) {
        admission.status = Status::InvalidArgument("u_n must be >= 1");
        return admission;
      }
      const int64_t u_prime = spec.u_n + spec.k - 1;
      const int64_t candidates = std::min<int64_t>(2 * u_prime - 1, n);
      predicted_cost =
          PredictFilterComparisons(n, u_prime, /*worst_case=*/false) *
              spec.prices.naive_cost +
          0.5 * static_cast<double>(candidates) *
              static_cast<double>(candidates - 1) * spec.prices.expert_cost;
      min_steps = n > 2 * u_prime - 1 ? 2 : 1;
      break;
    }
    case QueryKind::kAbove: {
      if (spec.anchor < 0 || spec.anchor >= n) {
        admission.status =
            Status::InvalidArgument("anchor must be an element of the shard");
      } else if (spec.above.votes_per_item < 1 ||
                 spec.above.votes_per_item % 2 == 0) {
        admission.status =
            Status::InvalidArgument("votes_per_item must be odd and >= 1");
      }
      if (!admission.status.ok()) return admission;
      predicted_cost = static_cast<double>(n - 1) *
                       static_cast<double>(spec.above.votes_per_item) *
                       spec.prices.naive_cost;
      min_steps = 1;
      break;
    }
  }

  if (spec.budget > 0.0 && predicted_cost > spec.budget) {
    admission.status = Status::ResourceExhausted(
        "predicted cost " + std::to_string(predicted_cost) +
        " exceeds budget " + std::to_string(spec.budget));
    return admission;
  }
  if (spec.deadline_steps > 0 && spec.deadline_steps < min_steps) {
    admission.status = Status::DeadlineExceeded(
        "deadline of " + std::to_string(spec.deadline_steps) +
        " steps is below the structural minimum of " +
        std::to_string(min_steps));
    return admission;
  }
  admission.status = Status::OK();
  return admission;
}

// One tenant's hermetic execution stack. Every RNG stream inside is seeded
// from the spec's root seed, so the stack's behaviour depends only on the
// spec — the keystone of the service's determinism contract.
struct TenantStack {
  std::unique_ptr<Comparator> naive_model;
  std::unique_ptr<Comparator> expert_model;
  std::unique_ptr<Comparator> crowd_model;
  std::unique_ptr<CrowdPlatform> platform;
  // Innermost executors: record the trace cells, count true dispatch.
  std::unique_ptr<BatchExecutor> naive_inner;
  std::unique_ptr<BatchExecutor> expert_inner;
  std::unique_ptr<ScheduledBatchExecutor> naive_gate;
  std::unique_ptr<ScheduledBatchExecutor> expert_gate;
  std::unique_ptr<ResilientBatchExecutor> naive_resilient;
  std::unique_ptr<ResilientBatchExecutor> expert_resilient;
  // Outermost executors: what the engines drive.
  BatchExecutor* naive_top = nullptr;
  BatchExecutor* expert_top = nullptr;
  // Innermost aliases for counter reads.
  BatchExecutor* naive_bottom = nullptr;
  BatchExecutor* expert_bottom = nullptr;
};

Status BuildStack(const QueryServiceOptions& options, const QuerySpec& spec,
                  FairShareScheduler* scheduler, int64_t tenant,
                  TenantStack* stack) {
  const ServiceShard& shard =
      options.shards[static_cast<size_t>(spec.shard)];
  if (options.use_platform) {
    stack->crowd_model = std::make_unique<RelativeErrorComparator>(
        shard.instance, RelativeErrorComparator::Options{},
        QueryService::StreamSeed(spec.seed, 3));
    PlatformOptions popts;
    popts.num_workers = options.platform_workers;
    popts.spammer_fraction = options.spammer_fraction;
    popts.honest_slip_probability = options.honest_slip_probability;
    popts.gold_task_probability = 0.0;
    popts.seed = QueryService::StreamSeed(spec.seed, 4);
    popts.fault = options.fault;
    popts.fault.seed = QueryService::StreamSeed(spec.seed, 5);
    popts.latency = options.latency;
    popts.latency.seed = QueryService::StreamSeed(spec.seed, 6);
    Result<std::unique_ptr<CrowdPlatform>> platform = CrowdPlatform::Create(
        stack->crowd_model.get(), shard.instance, {}, popts);
    if (!platform.ok()) return platform.status();
    stack->platform = std::move(platform).value();

    Result<std::unique_ptr<PlatformBatchExecutor>> naive =
        PlatformBatchExecutor::Create(stack->platform.get(),
                                      options.naive_votes);
    if (!naive.ok()) return naive.status();
    Result<std::unique_ptr<PlatformBatchExecutor>> expert =
        PlatformBatchExecutor::Create(stack->platform.get(),
                                      options.expert_votes);
    if (!expert.ok()) return expert.status();
    stack->naive_inner = std::move(naive).value();
    stack->expert_inner = std::move(expert).value();
  } else {
    stack->naive_model = std::make_unique<ThresholdComparator>(
        shard.instance, ThresholdModel{shard.delta_naive, 0.0},
        QueryService::StreamSeed(spec.seed, 1));
    stack->expert_model = std::make_unique<ThresholdComparator>(
        shard.instance, ThresholdModel{shard.delta_expert, 0.0},
        QueryService::StreamSeed(spec.seed, 2));
    stack->naive_inner =
        std::make_unique<ComparatorBatchExecutor>(stack->naive_model.get());
    stack->expert_inner =
        std::make_unique<ComparatorBatchExecutor>(stack->expert_model.get());
  }
  stack->naive_bottom = stack->naive_inner.get();
  stack->expert_bottom = stack->expert_inner.get();

  // The gate sits directly above the innermost executor so that, under the
  // resilient layer, every retry attempt is a scheduled submission.
  stack->naive_gate = std::make_unique<ScheduledBatchExecutor>(
      stack->naive_inner.get(), scheduler, tenant);
  stack->expert_gate = std::make_unique<ScheduledBatchExecutor>(
      stack->expert_inner.get(), scheduler, tenant);
  stack->naive_top = stack->naive_gate.get();
  stack->expert_top = stack->expert_gate.get();

  if (options.use_platform) {
    Result<std::unique_ptr<ResilientBatchExecutor>> naive =
        ResilientBatchExecutor::Create(stack->naive_top, options.resilient);
    if (!naive.ok()) return naive.status();
    Result<std::unique_ptr<ResilientBatchExecutor>> expert =
        ResilientBatchExecutor::Create(stack->expert_top, options.resilient);
    if (!expert.ok()) return expert.status();
    stack->naive_resilient = std::move(naive).value();
    stack->expert_resilient = std::move(expert).value();
    stack->naive_top = stack->naive_resilient.get();
    stack->expert_top = stack->expert_resilient.get();
  }
  return Status::OK();
}

// The two-phase kMax body — BatchedFindMaxWithExperts with an optional
// pipelined filter (the pipeline_depth > 1 path of the service). Kept
// byte-compatible in trace shape with core/batched.cc's glue so the
// non-pipelined branch is interchangeable with it.
Result<BatchedExpertMaxResult> RunTwoPhaseMax(
    const std::vector<ElementId>& items, BatchExecutor* naive,
    BatchExecutor* expert, const ExpertMaxOptions& options,
    int64_t pipeline_depth) {
  if (pipeline_depth <= 1) {
    return BatchedFindMaxWithExperts(items, naive, expert, options);
  }
  TraceSpanScope run_span(TraceSpanKind::kRun, "batched_expert_max");

  FilterOptions filter_options = options.filter;
  if (options.shared_cache != nullptr) {
    filter_options.shared_cache = options.shared_cache;
    filter_options.cache_class = options.naive_cache_class;
  }
  AsyncBatchAdapter async(naive);
  BatchedPipelineOptions pipeline;
  pipeline.max_in_flight = pipeline_depth;
  Result<BatchedFilterResult> filtered =
      PipelinedFilterCandidates(items, filter_options, &async, pipeline);
  if (!filtered.ok()) return filtered.status();

  BatchedExpertMaxResult out;
  out.result.candidates = std::move(filtered->filter.candidates);
  out.result.paid.naive = filtered->filter.paid_comparisons;
  out.result.issued.naive = filtered->filter.issued_comparisons;
  out.result.filter_rounds = filtered->filter.rounds;
  out.result.filter_hit_empty_round = filtered->filter.hit_empty_round;
  out.result.filter_stopped_by_budget = filtered->filter.stopped_by_budget;
  out.naive_steps = filtered->logical_steps;
  if (filtered->partial) {
    out.partial = true;
    out.fault_status = filtered->fault_status;
  }
  if (const FaultReport* report = naive->fault_report()) {
    out.has_naive_faults = true;
    out.naive_faults = *report;
  }
  if (out.result.candidates.empty()) {
    return Status::Internal("phase 1 returned an empty candidate set");
  }

  Result<BatchedMaxFindResult> phase2 =
      BatchedTwoMaxFind(out.result.candidates, expert, options.shared_cache,
                        options.expert_cache_class);
  if (!phase2.ok()) return phase2.status();
  out.result.best = phase2->maxfind.best;
  out.result.paid.expert = phase2->maxfind.paid_comparisons;
  out.result.issued.expert = phase2->maxfind.issued_comparisons;
  out.result.phase2_rounds = phase2->maxfind.rounds;
  out.expert_steps = phase2->logical_steps;
  if (phase2->partial) {
    out.partial = true;
    if (out.fault_status.ok()) out.fault_status = phase2->fault_status;
  }
  if (const FaultReport* report = expert->fault_report()) {
    out.has_expert_faults = true;
    out.expert_faults = *report;
  }
  return out;
}

// Single-class 2-MaxFind on the naive executor. BatchedTwoMaxFind opens an
// "expert" phase span by design; the naive-only strategy needs its spend
// billed to the naive class, so this mirror opens a "naive" phase instead.
Result<BatchedMaxFindResult> RunNaiveOnlyMax(
    const std::vector<ElementId>& items, BatchExecutor* executor,
    SharedPairCache* shared_cache) {
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(executor, shared_cache, /*cache_class=*/0);
  if (!engine.ok()) return engine.status();
  TraceSpanScope phase_span("naive", TraceWorkerClass::kNaive);
  Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(items, engine->get());
  if (!run.ok()) return run.status();
  BatchedMaxFindResult out;
  out.maxfind = run->maxfind;
  out.partial = run->partial;
  out.fault_status = run->fault_status;
  out.survivors = std::move(run->survivors);
  out.logical_steps = (*engine)->logical_steps();
  return out;
}

// The ABOVE (selection) query, batched: one naive vote-panel batch over
// every item-vs-anchor pair, then (optionally) one expert batch over the
// items whose panels were not unanimous. Classification is conservative
// under faults: an item with any lost vote escalates, and an escalated
// item with no expert evidence falls back to its naive majority (anchor
// wins a 0-0 tie), flagged partial.
Status RunAbove(const std::vector<ElementId>& items, ElementId anchor,
                const AboveQueryOptions& options, BatchExecutor* naive,
                BatchExecutor* expert, QueryOutcome* out) {
  TraceSpanScope run_span(TraceSpanKind::kRun, "service_above");
  const int64_t votes = options.votes_per_item;
  const int64_t count = static_cast<int64_t>(items.size());

  std::vector<BatchTaskResult> panel;
  {
    TraceSpanScope phase_span("above_naive", TraceWorkerClass::kNaive);
    std::vector<ComparisonPair> tasks;
    tasks.reserve(static_cast<size_t>(count * votes));
    for (ElementId item : items) {
      for (int64_t v = 0; v < votes; ++v) tasks.emplace_back(item, anchor);
    }
    Result<std::vector<BatchTaskResult>> result =
        naive->TryExecuteBatch(tasks);
    if (!result.ok()) return result.status();
    panel = std::move(result).value();
  }

  std::vector<int64_t> wins(static_cast<size_t>(count), 0);
  std::vector<int64_t> counted(static_cast<size_t>(count), 0);
  std::vector<ElementId> escalate;
  for (int64_t i = 0; i < count; ++i) {
    for (int64_t v = 0; v < votes; ++v) {
      const BatchTaskResult& vote =
          panel[static_cast<size_t>(i * votes + v)];
      if (!vote.answered) continue;  // Lost or provisional: not counted.
      ++counted[static_cast<size_t>(i)];
      if (vote.winner == items[static_cast<size_t>(i)]) {
        ++wins[static_cast<size_t>(i)];
      }
    }
    const bool unanimous =
        counted[static_cast<size_t>(i)] == votes &&
        (wins[static_cast<size_t>(i)] == 0 ||
         wins[static_cast<size_t>(i)] == votes);
    if (!unanimous) {
      escalate.push_back(items[static_cast<size_t>(i)]);
    } else if (wins[static_cast<size_t>(i)] == votes) {
      out->above.push_back(items[static_cast<size_t>(i)]);
    } else {
      out->below.push_back(items[static_cast<size_t>(i)]);
    }
    if (counted[static_cast<size_t>(i)] < votes) out->partial = true;
  }
  out->escalated = escalate;

  if (escalate.empty()) return Status::OK();
  if (options.expert_refine) {
    TraceSpanScope phase_span("above_expert", TraceWorkerClass::kExpert);
    std::vector<ComparisonPair> tasks;
    tasks.reserve(escalate.size());
    for (ElementId item : escalate) tasks.emplace_back(item, anchor);
    Result<std::vector<BatchTaskResult>> result =
        expert->TryExecuteBatch(tasks);
    if (!result.ok()) return result.status();
    for (size_t i = 0; i < escalate.size(); ++i) {
      const BatchTaskResult& verdict = (*result)[i];
      ElementId winner = verdict.winner;
      if (!verdict.answered) {
        out->partial = true;
        if (winner == -1) winner = anchor;  // No evidence: keep it out.
      }
      if (winner == escalate[i]) {
        out->above.push_back(escalate[i]);
      } else {
        out->below.push_back(escalate[i]);
      }
    }
    return Status::OK();
  }
  // No expert refinement: the naive majority decides the split panels.
  for (ElementId item : escalate) {
    int64_t index = -1;
    for (int64_t i = 0; i < count; ++i) {
      if (items[static_cast<size_t>(i)] == item) {
        index = i;
        break;
      }
    }
    CROWDMAX_CHECK(index >= 0);
    if (2 * wins[static_cast<size_t>(index)] >
        counted[static_cast<size_t>(index)]) {
      out->above.push_back(item);
    } else {
      out->below.push_back(item);
    }
  }
  return Status::OK();
}

// Runs one admitted spec on its hermetic stack. `cache` is the shard's
// cross-query cache for sharing tenants, or nullptr.
void RunOneQuery(const QueryServiceOptions& options, const QuerySpec& spec,
                 const Admission& admission, FairShareScheduler* scheduler,
                 int64_t tenant, SharedPairCache* cache, QueryOutcome* out) {
  const auto started = std::chrono::steady_clock::now();
  out->admitted = true;
  out->plan = admission.plan;

  std::shared_ptr<AlgoTrace> trace;
  std::optional<ScopedTrace> scoped_trace;
  if (options.collect_traces) {
    trace = std::make_shared<AlgoTrace>();
    scoped_trace.emplace(trace.get());
  }

  TenantStack stack;
  Status built = BuildStack(options, spec, scheduler, tenant, &stack);
  if (!built.ok()) {
    out->status = built;
    return;
  }
  const Instance* instance =
      options.shards[static_cast<size_t>(spec.shard)].instance;

  Status status = Status::OK();
  switch (spec.kind) {
    case QueryKind::kMax: {
      const std::vector<ElementId> items = instance->AllElements();
      ExpertMaxOptions algo;
      algo.filter.u_n = spec.u_n;
      algo.filter.memoize = true;
      algo.filter.max_comparisons = spec.max_comparisons;
      algo.filter.pipeline_groups = options.pipeline_depth > 1;
      algo.shared_cache = cache;
      switch (admission.plan.strategy) {
        case MaxStrategy::kTwoPhase: {
          Result<BatchedExpertMaxResult> result =
              RunTwoPhaseMax(items, stack.naive_top, stack.expert_top, algo,
                             options.pipeline_depth);
          if (!result.ok()) {
            status = result.status();
            break;
          }
          out->best = result->result.best;
          out->issued = result->result.issued;
          out->stopped_by_budget = result->result.filter_stopped_by_budget;
          out->partial = result->partial;
          out->fault_status = result->fault_status;
          break;
        }
        case MaxStrategy::kExpertOnly: {
          Result<BatchedMaxFindResult> result = BatchedTwoMaxFind(
              items, stack.expert_top, cache, /*cache_class=*/1);
          if (!result.ok()) {
            status = result.status();
            break;
          }
          out->best = result->maxfind.best;
          out->issued.expert = result->maxfind.issued_comparisons;
          out->partial = result->partial;
          out->fault_status = result->fault_status;
          break;
        }
        case MaxStrategy::kNaiveOnly: {
          Result<BatchedMaxFindResult> result =
              RunNaiveOnlyMax(items, stack.naive_top, cache);
          if (!result.ok()) {
            status = result.status();
            break;
          }
          out->best = result->maxfind.best;
          out->issued.naive = result->maxfind.issued_comparisons;
          out->partial = result->partial;
          out->fault_status = result->fault_status;
          break;
        }
      }
      break;
    }
    case QueryKind::kTopK: {
      TopKOptions algo;
      algo.k = spec.k;
      algo.filter.u_n = spec.u_n;
      algo.filter.memoize = true;
      algo.filter.max_comparisons = spec.max_comparisons;
      algo.shared_cache = cache;
      Result<BatchedTopKResult> result = BatchedFindTopKWithExperts(
          instance->AllElements(), stack.naive_top, stack.expert_top, algo);
      if (!result.ok()) {
        status = result.status();
        break;
      }
      out->top = result->result.top;
      out->partial = result->partial;
      out->fault_status = result->fault_status;
      break;
    }
    case QueryKind::kAbove: {
      std::vector<ElementId> items;
      items.reserve(static_cast<size_t>(instance->size() - 1));
      for (ElementId e = 0; e < instance->size(); ++e) {
        if (e != spec.anchor) items.push_back(e);
      }
      status = RunAbove(items, spec.anchor, spec.above, stack.naive_top,
                        stack.expert_top, out);
      break;
    }
  }
  out->status = status;

  // Spend and steps are read from the stack itself — the innermost
  // executors count true dispatch (what the trace cells record), the
  // outermost count caller-visible steps — so they are exact even for
  // queries aborted mid-run.
  out->paid.naive = stack.naive_bottom->comparisons();
  out->paid.expert = stack.expert_bottom->comparisons();
  if (out->issued.naive < out->paid.naive) {
    out->issued.naive = out->paid.naive;
  }
  if (out->issued.expert < out->paid.expert) {
    out->issued.expert = out->paid.expert;
  }
  out->cache_hits = (out->issued.naive - out->paid.naive) +
                    (out->issued.expert - out->paid.expert);
  out->cost = spec.prices.Cost(out->paid.naive, out->paid.expert);
  out->naive_steps = stack.naive_top->logical_steps();
  out->expert_steps = stack.expert_top->logical_steps();
  if (stack.platform != nullptr) {
    out->platform_dropped_tasks = stack.platform->fault_stats().dropped_tasks;
    out->platform_no_quorum_tasks =
        stack.platform->fault_stats().no_quorum_tasks;
  }
  out->scheduler = scheduler->stats(tenant);

  if (trace != nullptr) {
    scoped_trace.reset();
    out->trace_summary = trace->Summary();
    out->trace = std::move(trace);
  }
  out->latency_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count();
}

// Replays one per-query trace into the merged service trace: a run span
// per query, each cell re-recorded under its original phase/round key.
// Replay happens in spec order on one thread, so the merged trace — spans
// and cells — is deterministic across thread counts.
void MergeTrace(AlgoTrace* merged, const std::string& label,
                const AlgoTrace& trace) {
  const int64_t query_span = merged->BeginSpan(TraceSpanKind::kRun, label);
  for (const auto& [key, counts] : trace.cells()) {
    int64_t phase_span = -1;
    int64_t round_span = -1;
    if (!key.phase.empty()) {
      phase_span = merged->BeginPhase(key.phase, key.worker_class);
    }
    if (key.round >= 0) round_span = merged->BeginRound(key.round);
    merged->RecordDispatched(counts.dispatched);
    merged->RecordOutcomes(counts.answered, counts.no_quorum, counts.dropped);
    merged->RecordCacheHits(counts.cache_hits);
    merged->RecordDegraded(counts.degraded);
    merged->RecordRetries(counts.retries);
    if (round_span >= 0) merged->EndSpan(round_span);
    if (phase_span >= 0) merged->EndSpan(phase_span);
  }
  merged->EndSpan(query_span);
}

}  // namespace

Result<ServiceRunResult> QueryService::Run(
    const std::vector<QuerySpec>& specs) {
  const int64_t count = static_cast<int64_t>(specs.size());
  ServiceRunResult run;
  run.outcomes.resize(specs.size());

  // Admission: serial, in spec order, before anything executes.
  std::vector<Admission> admissions(specs.size());
  for (int64_t i = 0; i < count; ++i) {
    admissions[static_cast<size_t>(i)] =
        AdmitSpec(options_, specs[static_cast<size_t>(i)]);
  }

  // Scheduler registration (admitted specs only) and execution units:
  // every query is its own unit, except that sharing queries of one shard
  // chain into a single unit and run sequentially in spec order, so the
  // shard cache observes a deterministic request sequence.
  FairShareScheduler scheduler(options_.capacity,
                               options_.deadline_boost_margin);
  std::vector<int64_t> tenant_of(specs.size(), -1);
  std::vector<std::vector<int64_t>> units;
  std::map<int64_t, size_t> sharing_unit_of_shard;
  std::map<int64_t, std::unique_ptr<SharedPairCache>> shard_caches;
  for (int64_t i = 0; i < count; ++i) {
    const QuerySpec& spec = specs[static_cast<size_t>(i)];
    if (!admissions[static_cast<size_t>(i)].status.ok()) continue;
    tenant_of[static_cast<size_t>(i)] = scheduler.Register(
        spec.weight, spec.deadline_steps, spec.kill_after_steps);
    if (spec.share_cache) {
      auto [it, inserted] =
          sharing_unit_of_shard.try_emplace(spec.shard, units.size());
      if (inserted) {
        units.emplace_back();
        shard_caches.try_emplace(spec.shard,
                                 std::make_unique<SharedPairCache>());
      }
      units[it->second].push_back(i);
    } else {
      units.push_back({i});
    }
  }

  ThreadPool pool(options_.threads);
  pool.ParallelFor(static_cast<int64_t>(units.size()), [&](int64_t u) {
    for (int64_t i : units[static_cast<size_t>(u)]) {
      const QuerySpec& spec = specs[static_cast<size_t>(i)];
      SharedPairCache* cache =
          spec.share_cache ? shard_caches.at(spec.shard).get() : nullptr;
      RunOneQuery(options_, spec, admissions[static_cast<size_t>(i)],
                  &scheduler, tenant_of[static_cast<size_t>(i)], cache,
                  &run.outcomes[static_cast<size_t>(i)]);
    }
  });

  // Merge — spec order, one thread: report tallies, merged trace, metrics.
  if (options_.collect_traces) {
    run.merged_trace = std::make_shared<AlgoTrace>();
  }
  ServiceReport& report = run.report;
  report.queries = count;
  for (int64_t i = 0; i < count; ++i) {
    const QuerySpec& spec = specs[static_cast<size_t>(i)];
    QueryOutcome& out = run.outcomes[static_cast<size_t>(i)];
    if (!admissions[static_cast<size_t>(i)].status.ok()) {
      out.status = admissions[static_cast<size_t>(i)].status;
      out.plan = admissions[static_cast<size_t>(i)].plan;
      switch (out.status.code()) {
        case StatusCode::kResourceExhausted:
          ++report.rejected_budget;
          break;
        case StatusCode::kDeadlineExceeded:
          ++report.rejected_deadline;
          break;
        default:
          ++report.rejected_invalid;
          break;
      }
      continue;
    }
    ++report.admitted;
    if (out.status.ok()) {
      ++report.completed;
    } else if (out.status.code() == StatusCode::kDeadlineExceeded) {
      ++report.aborted_deadline;
    } else if (out.status.code() == StatusCode::kAborted) {
      ++report.aborted_chaos;
    }
    if (out.partial) ++report.partial;
    report.paid += out.paid;
    report.spend += out.cost;
    report.cache_hits += out.cache_hits;
    report.logical_steps += out.naive_steps + out.expert_steps;
    report.scheduler_grants += out.scheduler.grants;
    report.scheduler_waits += out.scheduler.waits;
    report.max_grants_behind =
        std::max(report.max_grants_behind, out.scheduler.max_grants_behind);
    report.dropped_tasks += out.platform_dropped_tasks;
    report.no_quorum_tasks += out.platform_no_quorum_tasks;
    if (run.merged_trace != nullptr && out.trace != nullptr) {
      const std::string label =
          spec.tenant.empty() ? "query:" + std::to_string(i)
                              : "query:" + spec.tenant;
      MergeTrace(run.merged_trace.get(), label, *out.trace);
    }
  }

  ServiceCounter("crowdmax.service.queries")->Add(report.queries);
  ServiceCounter("crowdmax.service.admitted")->Add(report.admitted);
  ServiceCounter("crowdmax.service.rejected")
      ->Add(report.rejected_budget + report.rejected_deadline +
            report.rejected_invalid);
  ServiceCounter("crowdmax.service.deadline_aborts")
      ->Add(report.aborted_deadline);
  return run;
}

Result<QueryOutcome> QueryService::ExecuteAlone(
    const QueryServiceOptions& options, const QuerySpec& spec) {
  QueryServiceOptions alone = options;
  alone.threads = 1;
  Result<QueryService> service = Create(alone);
  if (!service.ok()) return service.status();
  QuerySpec solo = spec;
  solo.share_cache = false;
  Result<ServiceRunResult> run = service->Run({solo});
  if (!run.ok()) return run.status();
  return std::move(run->outcomes[0]);
}

Status AuditServiceRun(const ServiceRunResult& run) {
  if (run.merged_trace == nullptr) {
    return Status::FailedPrecondition(
        "AuditServiceRun needs collect_traces (no merged trace)");
  }
  MetricsAuditor auditor(run.merged_trace.get());
  int64_t naive = 0;
  int64_t expert = 0;
  int64_t dropped = 0;
  int64_t no_quorum = 0;
  for (const QueryOutcome& out : run.outcomes) {
    naive += out.paid.naive;
    expert += out.paid.expert;
    dropped += out.platform_dropped_tasks;
    no_quorum += out.platform_no_quorum_tasks;
  }
  auditor.ExpectDispatched(TraceWorkerClass::kNaive, naive);
  auditor.ExpectDispatched(TraceWorkerClass::kExpert, expert);
  auditor.ExpectDispatchedTotal(naive + expert);
  auditor.ExpectTaskFaults(dropped, no_quorum);
  return auditor.Check();
}

}  // namespace crowdmax
