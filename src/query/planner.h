// Cost-based planning of crowd max queries.
//
// The paper positions its algorithm as a building block "inside systems
// like CrowdDB to answer a wider range of queries using the crowd"
// (Section 1.1) and spends Section 5.1 mapping out when each strategy is
// cheapest: naive-only 2-MaxFind is cheap but unreliable, expert-only
// 2-MaxFind wins when the expert/naive price ratio is small (< ~10), and
// the two-phase Algorithm 1 wins when experts are expensive. The planner
// encodes exactly that decision as closed-form cost predictions so a query
// engine can pick a strategy before spending a cent.

#ifndef CROWDMAX_QUERY_PLANNER_H_
#define CROWDMAX_QUERY_PLANNER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/cost.h"

namespace crowdmax {

/// Execution strategies for a crowd MAX query.
enum class MaxStrategy {
  /// Algorithm 1: naive filter + expert 2-MaxFind. Accurate (2*delta_e).
  kTwoPhase,
  /// 2-MaxFind with experts only. Accurate (2*delta_e).
  kExpertOnly,
  /// 2-MaxFind with naive workers only. Cheap but only 2*delta_n accurate
  /// — considered only when the caller opts into approximate answers.
  kNaiveOnly,
};

/// Returns a short stable name for `strategy` ("two-phase", ...).
std::string MaxStrategyName(MaxStrategy strategy);

/// Inputs to the planner.
struct PlannerInput {
  /// Dataset size.
  int64_t n = 0;
  /// (Estimated) number of elements naive-indistinguishable from the
  /// maximum; see EstimateUn.
  int64_t u_n = 1;
  /// Per-comparison prices.
  CostModel prices;
  /// Whether a 2*delta_n-approximate answer is acceptable; enables the
  /// naive-only strategy.
  bool allow_naive_accuracy = false;
  /// Plan against worst-case comparison counts (theory bounds) instead of
  /// average-case predictions.
  bool worst_case = false;
};

/// A planned strategy with its predicted cost.
struct MaxQueryPlan {
  MaxStrategy strategy = MaxStrategy::kTwoPhase;
  /// Predicted total monetary cost of the chosen strategy.
  double predicted_cost = 0.0;
  /// Predicted costs of all strategies, for explanation.
  double two_phase_cost = 0.0;
  double expert_only_cost = 0.0;
  /// Infinity when naive accuracy is not allowed.
  double naive_only_cost = 0.0;
  /// Human-readable justification of the choice.
  std::string explanation;
};

/// Predicted naive comparisons of Algorithm 1's phase 1. The average-case
/// constant (~2.6*n*u_n) is calibrated from the measurements in
/// EXPERIMENTS.md; the worst case is Lemma 3's 4*n*u_n.
double PredictFilterComparisons(int64_t n, int64_t u_n, bool worst_case);

/// Predicted expert comparisons of Algorithm 1's phase 2 over the
/// <= 2*u_n - 1 candidates (average ~linear in u_n; worst case
/// 2*(2*u_n-1)^{3/2}).
double PredictPhase2Comparisons(int64_t u_n, bool worst_case);

/// Predicted comparisons of single-class 2-MaxFind on n elements
/// (average ~1.7*n; worst case 2*n^{3/2}).
double PredictTwoMaxFindComparisons(int64_t n, bool worst_case);

/// Chooses the cheapest strategy meeting the accuracy requirement.
/// Returns InvalidArgument for non-positive n / u_n or invalid prices.
Result<MaxQueryPlan> PlanMaxQuery(const PlannerInput& input);

}  // namespace crowdmax

#endif  // CROWDMAX_QUERY_PLANNER_H_
