// Service-level chaos harness and self-protection for QueryService.
//
// The ServiceSupervisor is the control loop a deployment would wrap around
// the query service: it decides which submitted queries run at all (load
// shedding, circuit breakers), under which recovery policy they run
// (graceful degradation), injects deliberate failures from a seeded chaos
// plan, and recovers killed queries by deterministic re-execution — every
// tenant stack is hermetically seeded (QueryService::StreamSeed), so
// re-running a killed spec reproduces the uninterrupted run bit-for-bit.
// Comparator-mode engine drives additionally support true checkpoint
// resume (core/checkpoint.h); the supervisor's re-execution path is the
// recovery story for platform-mode stacks, whose external-world state
// (CrowdPlatform) is deliberately not serialized.
//
// Everything here is deterministic given the specs and the chaos seed:
// queries are supervised strictly in spec order, breaker transitions
// depend only on the outcome sequence, and shedding depends only on the
// submitted batch. A chaos run is therefore replayable — the property
// tests/chaos_test.cc leans on.
//
// Protection mechanisms, in the order a query meets them:
//
//  1. Service outage window (ChaosSchedule): queries whose submission
//     index falls inside the window are shed with kUnavailable and a
//     retry-after hint counting down to the window's end — the "whole
//     service killed" experiment of the chaos plan.
//  2. Load shedding (LoadShedOptions): when a submitted batch exceeds the
//     admission high watermark, the excess queries are shed before
//     execution, lowest fair-share weight first (ties: later submission
//     first), with kUnavailable + retry-after. Shed queries never reach
//     admission control, so they cost nothing.
//  3. Circuit breaker (CircuitBreakerOptions, one per shard): consecutive
//     unavailable/no-quorum failures trip the breaker open; while open,
//     the shard's queries are shed with kUnavailable + retry-after; after
//     a cooldown the breaker half-opens and the next query runs as a
//     probe — success closes the breaker, failure re-opens it.
//  4. Graceful degradation (GracefulDegradeOptions): while a shard's
//     breaker is not closed, its queries (the probes, and every query when
//     shedding is disabled in favour of degradation) run under a relaxed
//     recovery policy (ResilientOptions with a lower quorum). Relaxed
//     quorum only changes how much evidence a majority needs, never
//     whether an element can be evicted without a counted loss, so the
//     Lemma 1 filter guarantee (the maximum survives) is preserved.
//  5. Chaos kill/restart (ChaosSchedule): an armed query is killed by the
//     scheduler's kill switch (QuerySpec::kill_after_steps) with a typed
//     kAborted at a clean submission boundary, then recovered by
//     re-execution; the report separates killed, recovered and
//     unrecovered counts.

#ifndef CROWDMAX_QUERY_SUPERVISOR_H_
#define CROWDMAX_QUERY_SUPERVISOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/resilient.h"
#include "query/service.h"

namespace crowdmax {

/// Seeded fault plan of one supervised run. All draws come from one
/// xoshiro stream seeded with `seed`, taken in spec order before anything
/// executes, so the plan is a pure function of (specs, seed).
struct ChaosSchedule {
  uint64_t seed = 0;
  /// Per-query probability of being killed mid-run.
  double kill_query_probability = 0.0;
  /// A killed query's kill step is drawn uniformly from
  /// [min_kill_step, max_kill_step] scheduler grants.
  int64_t min_kill_step = 1;
  int64_t max_kill_step = 4;
  /// Re-execution attempts per killed query (1 is always enough on a
  /// healthy stack; 0 leaves kills unrecovered, for measuring raw loss).
  int64_t max_restarts = 1;
  /// Whole-service outage: queries with submission index in
  /// [outage_start, outage_start + outage_queries) are shed with
  /// kUnavailable and a retry-after hint. outage_queries = 0 disables.
  int64_t outage_start = 0;
  int64_t outage_queries = 0;
};

/// Per-shard breaker policy (closed -> open -> half-open -> closed).
struct CircuitBreakerOptions {
  /// Consecutive failures (kUnavailable outcome, or a partial result whose
  /// fault status is kUnavailable) that trip the breaker.
  int64_t failure_threshold = 3;
  /// Queries shed while open before the breaker half-opens and probes.
  int64_t cooldown_queries = 2;
  /// Consecutive probe successes required to close again.
  int64_t probe_successes_to_close = 1;
  /// Retry-after hint attached to breaker-shed queries.
  int64_t retry_after_steps = 8;
};

/// Admission-queue high-watermark shedding.
struct LoadShedOptions {
  /// Max queries of one submitted batch that are allowed to execute;
  /// 0 = unlimited. The excess is shed lowest-weight-first.
  int64_t max_admitted = 0;
  /// Retry-after hint attached to load-shed queries.
  int64_t retry_after_steps = 4;
};

/// Relaxed-quorum execution for shards whose breaker is not closed.
struct GracefulDegradeOptions {
  bool enabled = false;
  /// The relaxed recovery policy (typically: min_votes lowered, a
  /// deterministic fallback installed). Applied to the whole per-tenant
  /// resilient layer of degraded queries.
  ResilientOptions degraded;
};

struct SupervisorOptions {
  QueryServiceOptions service;
  ChaosSchedule chaos;
  CircuitBreakerOptions breaker;
  LoadShedOptions shed;
  GracefulDegradeOptions degrade;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };
const char* BreakerStateName(BreakerState state);

/// One supervised query: the final (post-recovery) outcome plus what the
/// supervisor did to it. A shed query has outcome.status kUnavailable with
/// a retry_after_steps hint and was never executed.
struct SupervisedOutcome {
  QueryOutcome outcome;
  /// Shed by the outage window or the admission watermark.
  bool shed_load = false;
  /// Shed by an open circuit breaker.
  bool shed_breaker = false;
  /// Ran as the half-open probe of its shard's breaker.
  bool probe = false;
  /// Ran under the relaxed-quorum degraded policy.
  bool degraded = false;
  /// Chaos kills injected into this query (0 or 1).
  int64_t kills = 0;
  /// Recovery re-executions that ran (<= ChaosSchedule::max_restarts).
  int64_t restarts = 0;
};

struct SupervisorReport {
  int64_t submitted = 0;
  int64_t executed = 0;
  int64_t completed = 0;
  int64_t shed_outage = 0;
  int64_t shed_load = 0;
  int64_t shed_breaker = 0;
  int64_t killed = 0;
  int64_t recovered = 0;
  int64_t unrecovered = 0;
  int64_t degraded_runs = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_probes = 0;
  int64_t breaker_closes = 0;
};

struct SupervisedRunResult {
  std::vector<SupervisedOutcome> outcomes;  // Aligned with the input specs.
  SupervisorReport report;
};

/// The supervisor. Create once; each Run supervises one submitted batch.
/// Breaker state persists across Runs (a tripped shard stays tripped), so
/// a long-lived supervisor models a long-lived deployment.
class ServiceSupervisor {
 public:
  /// Validates the wrapped service options plus the supervisor knobs.
  static Result<ServiceSupervisor> Create(const SupervisorOptions& options);

  /// Supervises `specs` in spec order: outage/load shedding first, then
  /// per-query breaker checks, chaos kills and recovery. Never hangs and
  /// never returns silent partial results — every non-executed query
  /// carries a typed status with a retry-after hint.
  Result<SupervisedRunResult> Run(const std::vector<QuerySpec>& specs);

  BreakerState breaker_state(int64_t shard) const;

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int64_t consecutive_failures = 0;
    int64_t shed_while_open = 0;
    int64_t probe_successes = 0;
  };

  explicit ServiceSupervisor(const SupervisorOptions& options);

  /// Feeds one executed outcome into the shard's breaker; updates the
  /// report's trip/probe/close tallies.
  void ObserveOutcome(int64_t shard, const QueryOutcome& outcome,
                      bool was_probe, SupervisorReport* report);

  SupervisorOptions options_;
  std::vector<Breaker> breakers_;  // One per shard.
};

}  // namespace crowdmax

#endif  // CROWDMAX_QUERY_SUPERVISOR_H_
