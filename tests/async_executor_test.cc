// The AsyncBatchExecutor contract (core/async_executor.h): handles, the
// compute-at-submit discipline that keeps pipelined runs bit-identical to
// synchronous ones, and latency banking through the decorator stack. No
// test here asserts on wall-clock durations — timing assertions flake;
// what is pinned instead is *where* the deterministic effects land
// (submission time) and *where* the simulated latency goes (drained from
// the inner stack into the adapter's deadline, not left behind).

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/async_executor.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/resilient.h"
#include "datasets/instances.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

// An executor whose fallible path always rejects the submission, for
// pinning that a stored failure is delivered at Wait, not at submit.
class AlwaysUnavailableExecutor : public BatchExecutor {
 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override {
    CROWDMAX_CHECK(false);
    (void)tasks;
    return {};
  }
  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>&) override {
    return Status::Unavailable("platform down");
  }
};

TEST(AsyncBatchAdapterTest, ComputeAtSubmitAndHandleLifecycle) {
  Instance instance = MakeInstance(4, 31);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);
  EXPECT_EQ(async.inner(), &executor);

  Result<int64_t> handle = async.SubmitBatchAsync({{0, 1}, {2, 3}});
  ASSERT_TRUE(handle.ok());

  // Compute-at-submit: the inner executor's counters are final before any
  // Wait — this is what makes the pipelined budget gate exact.
  EXPECT_EQ(executor.comparisons(), 2);
  EXPECT_EQ(executor.logical_steps(), 1);
  // No latency model on the inner stack: the deadline is already "now".
  EXPECT_TRUE(async.Ready(*handle));

  Result<std::vector<BatchTaskResult>> results = async.Wait(*handle);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  for (const BatchTaskResult& result : *results) {
    EXPECT_TRUE(result.answered);
  }
  EXPECT_EQ((*results)[0].winner,
            instance.value(0) >= instance.value(1) ? 0 : 1);
  EXPECT_EQ((*results)[1].winner,
            instance.value(2) >= instance.value(3) ? 2 : 3);

  // Wait consumes the handle; a second Wait and an unknown handle are
  // caller errors, not crashes.
  Result<std::vector<BatchTaskResult>> again = async.Wait(*handle);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(async.Ready(*handle));
  Result<std::vector<BatchTaskResult>> unknown = async.Wait(123456);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(async.submitted(), 1);
  EXPECT_EQ(async.collected(), 1);
}

TEST(AsyncBatchAdapterTest, EmptyBatchIsLegalAndCostsNoStep) {
  Instance instance = MakeInstance(2, 37);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);

  Result<int64_t> handle = async.SubmitBatchAsync({});
  ASSERT_TRUE(handle.ok());
  // Mirrors the synchronous path: an empty batch is a no-op step.
  EXPECT_EQ(executor.logical_steps(), 0);
  EXPECT_EQ(executor.comparisons(), 0);
  Result<std::vector<BatchTaskResult>> results = async.Wait(*handle);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(AsyncBatchAdapterTest, InterleavedSubmissionsMatchSynchronousPath) {
  Instance instance = MakeInstance(12, 41);
  const std::vector<std::vector<ComparisonPair>> batches = {
      {{0, 1}, {2, 3}, {4, 5}}, {{6, 7}, {8, 9}}, {{10, 11}, {0, 2}}};

  // Reference: the same batches run synchronously on a fresh executor.
  OracleComparator sync_oracle(&instance);
  ComparatorBatchExecutor sync_executor(&sync_oracle);
  std::vector<std::vector<BatchTaskResult>> expected;
  for (const std::vector<ComparisonPair>& batch : batches) {
    Result<std::vector<BatchTaskResult>> result =
        sync_executor.TryExecuteBatch(batch);
    ASSERT_TRUE(result.ok());
    expected.push_back(*std::move(result));
  }

  // Async: all three batches in flight before the first Wait. FIFO
  // collection must return each batch's own answers, and the inner
  // counters must already agree with the synchronous run at full depth.
  OracleComparator async_oracle(&instance);
  ComparatorBatchExecutor async_executor(&async_oracle);
  AsyncBatchAdapter async(&async_executor);
  std::vector<int64_t> handles;
  for (const std::vector<ComparisonPair>& batch : batches) {
    Result<int64_t> handle = async.SubmitBatchAsync(batch);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  EXPECT_EQ(async_executor.comparisons(), sync_executor.comparisons());
  EXPECT_EQ(async_executor.logical_steps(), sync_executor.logical_steps());
  EXPECT_EQ(async.submitted(), 3);
  EXPECT_EQ(async.collected(), 0);

  for (size_t i = 0; i < handles.size(); ++i) {
    Result<std::vector<BatchTaskResult>> results = async.Wait(handles[i]);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), expected[i].size()) << "batch " << i;
    for (size_t t = 0; t < results->size(); ++t) {
      EXPECT_EQ((*results)[t].winner, expected[i][t].winner)
          << "batch " << i << " task " << t;
      EXPECT_EQ((*results)[t].answered, expected[i][t].answered)
          << "batch " << i << " task " << t;
    }
  }
  EXPECT_EQ(async.collected(), 3);
}

TEST(AsyncBatchAdapterTest, SubmissionFailureIsStoredAndDeliveredAtWait) {
  AlwaysUnavailableExecutor executor;
  AsyncBatchAdapter async(&executor);

  // The submission itself succeeds — the failure is the batch's *result*,
  // collected like any other so the pipelined drive sees faults in the
  // same order the synchronous drive would.
  Result<int64_t> handle = async.SubmitBatchAsync({{0, 1}});
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(async.Ready(*handle));
  Result<std::vector<BatchTaskResult>> results = async.Wait(*handle);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(async.submitted(), 1);
  EXPECT_EQ(async.collected(), 1);
}

TEST(AsyncBatchAdapterTest, LatencyDrainsThroughResilientStack) {
  Instance instance = MakeInstance(16, 43);
  OracleComparator crowd_model(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.gold_task_probability = 0.0;
  // Tiny but non-zero latency terms: enough to prove the draws happen and
  // get banked, small enough that Wait's sleep is negligible.
  options.latency.base_micros = 200;
  options.latency.per_task_micros = 10;
  options.latency.jitter_micros = 50;
  options.latency.seed = 7;
  Result<std::unique_ptr<CrowdPlatform>> platform =
      CrowdPlatform::Create(&crowd_model, &instance, {}, options);
  ASSERT_TRUE(platform.ok());
  Result<std::unique_ptr<PlatformBatchExecutor>> platform_executor =
      PlatformBatchExecutor::Create(platform->get(), /*votes_per_task=*/3);
  ASSERT_TRUE(platform_executor.ok());
  Result<std::unique_ptr<ResilientBatchExecutor>> resilient =
      ResilientBatchExecutor::Create(platform_executor->get());
  ASSERT_TRUE(resilient.ok());
  AsyncBatchAdapter async(resilient->get());

  Result<int64_t> first = async.SubmitBatchAsync({{0, 1}, {2, 3}});
  ASSERT_TRUE(first.ok());
  Result<int64_t> second = async.SubmitBatchAsync({{4, 5}, {6, 7}});
  ASSERT_TRUE(second.ok());

  // The platform drew a latency per submission and the adapter drained it
  // through the resilient decorator into its deadlines at submit time —
  // nothing is left in the stack for anyone else to steal.
  EXPECT_GE((*platform)->total_latency_micros(),
            2 * options.latency.base_micros);
  EXPECT_EQ((*resilient)->TakeSimulatedLatencyMicros(), 0);
  EXPECT_EQ((*platform_executor)->TakeSimulatedLatencyMicros(), 0);

  for (int64_t handle : {*first, *second}) {
    Result<std::vector<BatchTaskResult>> results = async.Wait(handle);
    ASSERT_TRUE(results.ok());
    for (const BatchTaskResult& result : *results) {
      EXPECT_TRUE(result.answered);
    }
  }
}

TEST(AsyncBatchAdapterTest, SpeculativeLifecycle) {
  Instance instance = MakeInstance(6, 47);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);

  Result<int64_t> handle = async.SubmitSpeculativeBatch();
  ASSERT_TRUE(handle.ok());

  // Nothing ran: a speculative submission records only the wall-clock
  // start of a round trip.
  EXPECT_EQ(executor.comparisons(), 0);
  EXPECT_EQ(executor.logical_steps(), 0);

  // Waiting on an unconfirmed handle is a caller error, not a block; Ready
  // reports false because there is nothing to collect.
  EXPECT_FALSE(async.Ready(*handle));
  Result<std::vector<BatchTaskResult>> premature = async.Wait(*handle);
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

  // Confirm supplies the tasks: all deterministic effects land here,
  // exactly where a firm submission would have put them.
  ASSERT_TRUE(async.ConfirmBatch(*handle, {{0, 1}, {2, 3}}).ok());
  EXPECT_EQ(executor.comparisons(), 2);
  EXPECT_EQ(executor.logical_steps(), 1);

  // Confirming twice is a caller error.
  Status again = async.ConfirmBatch(*handle, {{4, 5}});
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);

  EXPECT_TRUE(async.Ready(*handle));
  Result<std::vector<BatchTaskResult>> results = async.Wait(*handle);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].winner,
            instance.value(0) >= instance.value(1) ? 0 : 1);
}

TEST(AsyncBatchAdapterTest, ConfirmOnFirmHandleIsError) {
  Instance instance = MakeInstance(4, 53);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);

  Result<int64_t> handle = async.SubmitBatchAsync({{0, 1}});
  ASSERT_TRUE(handle.ok());
  Status confirm = async.ConfirmBatch(*handle, {{2, 3}});
  ASSERT_FALSE(confirm.ok());
  EXPECT_EQ(confirm.code(), StatusCode::kFailedPrecondition);
  // The firm batch is untouched by the failed confirm.
  Result<std::vector<BatchTaskResult>> results = async.Wait(*handle);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(AsyncBatchAdapterTest, CancelRefundsBankedAnswers) {
  Instance instance = MakeInstance(8, 59);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);

  // Cancelling an unconfirmed speculative handle: nothing was computed,
  // so nothing is refunded.
  Result<int64_t> spec = async.SubmitSpeculativeBatch();
  ASSERT_TRUE(spec.ok());
  Result<int64_t> refunded = async.CancelBatch(*spec);
  ASSERT_TRUE(refunded.ok());
  EXPECT_EQ(*refunded, 0);
  EXPECT_EQ(async.cancelled(), 1);
  EXPECT_EQ(async.refunded_answers(), 0);
  // The handle is consumed.
  EXPECT_FALSE(async.Wait(*spec).ok());

  // Cancelling a firm handle throws away already-computed answers; the
  // refund reports how many.
  Result<int64_t> firm = async.SubmitBatchAsync({{0, 1}, {2, 3}, {4, 5}});
  ASSERT_TRUE(firm.ok());
  refunded = async.CancelBatch(*firm);
  ASSERT_TRUE(refunded.ok());
  EXPECT_EQ(*refunded, 3);
  EXPECT_EQ(async.cancelled(), 2);
  EXPECT_EQ(async.refunded_answers(), 3);
  EXPECT_FALSE(async.Wait(*firm).ok());

  // Unknown handles are invalid-argument, matching Wait.
  Result<int64_t> unknown = async.CancelBatch(987654);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdmax
