// Tests for the Instance abstraction (values, distances, ranks, u(delta)).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(InstanceTest, BasicAccessors) {
  Instance instance({3.0, 1.0, 2.0});
  EXPECT_EQ(instance.size(), 3);
  EXPECT_FALSE(instance.empty());
  EXPECT_DOUBLE_EQ(instance.value(0), 3.0);
  EXPECT_DOUBLE_EQ(instance.value(2), 2.0);
  EXPECT_TRUE(instance.Contains(0));
  EXPECT_TRUE(instance.Contains(2));
  EXPECT_FALSE(instance.Contains(3));
  EXPECT_FALSE(instance.Contains(-1));
}

TEST(InstanceTest, DistanceIsSymmetricAbsolute) {
  Instance instance({5.0, 2.0});
  EXPECT_DOUBLE_EQ(instance.Distance(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(instance.Distance(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(instance.Distance(0, 0), 0.0);
}

TEST(InstanceTest, RelativeDifference) {
  Instance instance({100.0, 80.0, 0.0});
  EXPECT_DOUBLE_EQ(instance.RelativeDifference(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(instance.RelativeDifference(1, 0), 0.2);
  EXPECT_DOUBLE_EQ(instance.RelativeDifference(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(instance.RelativeDifference(2, 2), 0.0);
}

TEST(InstanceTest, RelativeDifferenceWithNegativeValues) {
  // DOTS uses value = -dots; the relative difference must match the
  // relative dot-count difference.
  Instance instance({-100.0, -120.0});
  EXPECT_NEAR(instance.RelativeDifference(0, 1), 20.0 / 120.0, 1e-12);
}

TEST(InstanceTest, MaxElement) {
  Instance instance({1.0, 9.0, 4.0, 9.0});
  EXPECT_EQ(instance.MaxElement(), 1);  // Lowest id among ties.
}

TEST(InstanceTest, MaxElementSingle) {
  Instance instance({-7.0});
  EXPECT_EQ(instance.MaxElement(), 0);
}

TEST(InstanceTest, RankCountsStrictlyGreater) {
  Instance instance({1.0, 9.0, 4.0, 9.0, 2.0});
  EXPECT_EQ(instance.Rank(1), 1);
  EXPECT_EQ(instance.Rank(3), 1);  // Ties share the best rank.
  EXPECT_EQ(instance.Rank(2), 3);
  EXPECT_EQ(instance.Rank(4), 4);
  EXPECT_EQ(instance.Rank(0), 5);
}

TEST(InstanceTest, CountWithinIncludesMaximum) {
  Instance instance({10.0, 9.5, 9.0, 5.0});
  EXPECT_EQ(instance.CountWithin(0.0), 1);   // Just M.
  EXPECT_EQ(instance.CountWithin(0.5), 2);
  EXPECT_EQ(instance.CountWithin(1.0), 3);
  EXPECT_EQ(instance.CountWithin(100.0), 4);
}

TEST(InstanceTest, DeltaForURoundTripsThroughCountWithin) {
  Instance instance({10.0, 9.5, 9.0, 5.0, 4.0});
  for (int64_t u = 1; u <= instance.size(); ++u) {
    const double delta = instance.DeltaForU(u);
    EXPECT_GE(instance.CountWithin(delta), u)
        << "u=" << u << " delta=" << delta;
    if (u > 1) {
      // Strictly below delta there must be fewer than u elements.
      EXPECT_LT(instance.CountWithin(std::nexttoward(delta, 0.0)), u);
    }
  }
}

TEST(InstanceTest, AllElementsEnumeratesIds) {
  Instance instance({1.0, 2.0, 3.0});
  const std::vector<ElementId> all = instance.AllElements();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 0);
  EXPECT_EQ(all[2], 2);
}

// Parameterized sweep: DeltaForU consistency on random instances.
class InstanceDeltaSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(InstanceDeltaSweep, DeltaForUMatchesCountOnUniformInstances) {
  const int64_t n = GetParam();
  Result<Instance> instance = UniformInstance(n, /*seed=*/1000 + n);
  ASSERT_TRUE(instance.ok());
  for (int64_t u : {int64_t{1}, n / 4 + 1, n / 2 + 1, n}) {
    const double delta = instance->DeltaForU(u);
    EXPECT_GE(instance->CountWithin(delta), u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, InstanceDeltaSweep,
                         ::testing::Values<int64_t>(2, 5, 17, 64, 301));

}  // namespace
}  // namespace crowdmax
