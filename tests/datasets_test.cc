// Tests for the dataset generators: uniform/packed/Lemma-7 instances, DOTS,
// CARS and the search-results scenario.

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/cars.h"
#include "datasets/dots.h"
#include "datasets/instances.h"
#include "datasets/io.h"
#include "datasets/search.h"

namespace crowdmax {
namespace {

// ------------------------------------------------------------- Uniform.

TEST(UniformInstanceTest, RespectsRangeAndSize) {
  Result<Instance> instance = UniformInstance(500, /*seed=*/1, 2.0, 3.0);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->size(), 500);
  for (ElementId e = 0; e < instance->size(); ++e) {
    EXPECT_GE(instance->value(e), 2.0);
    EXPECT_LT(instance->value(e), 3.0);
  }
}

TEST(UniformInstanceTest, DeterministicPerSeed) {
  Result<Instance> a = UniformInstance(50, 7);
  Result<Instance> b = UniformInstance(50, 7);
  Result<Instance> c = UniformInstance(50, 8);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool same_ab = true;
  bool same_ac = true;
  for (ElementId e = 0; e < 50; ++e) {
    same_ab = same_ab && a->value(e) == b->value(e);
    same_ac = same_ac && a->value(e) == c->value(e);
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(UniformInstanceTest, RejectsBadArguments) {
  EXPECT_FALSE(UniformInstance(0, 1).ok());
  EXPECT_FALSE(UniformInstance(10, 1, 5.0, 5.0).ok());
  EXPECT_FALSE(UniformInstance(10, 1, 5.0, 4.0).ok());
}

// -------------------------------------------------------------- Packed.

TEST(PackedInstanceTest, AllValuesWithinSpreadAndDistinct) {
  Result<Instance> packed = PackedInstance(100, /*seed=*/2, 0.5, 1e-6);
  ASSERT_TRUE(packed.ok());
  std::set<double> values;
  for (ElementId e = 0; e < packed->size(); ++e) {
    EXPECT_GE(packed->value(e), 0.5);
    EXPECT_LE(packed->value(e), 0.5 + 1e-6);
    values.insert(packed->value(e));
  }
  EXPECT_EQ(values.size(), 100u);  // Distinct.
  // Every pair indistinguishable at delta = spread.
  EXPECT_EQ(packed->CountWithin(1e-6), 100);
}

TEST(PackedInstanceTest, IdsDoNotEncodeRank) {
  Result<Instance> packed = PackedInstance(50, /*seed=*/3);
  ASSERT_TRUE(packed.ok());
  // The maximum should rarely be element 49 (shuffled slots).
  int ascending_prefix = 0;
  for (ElementId e = 0; e + 1 < packed->size(); ++e) {
    if (packed->value(e) < packed->value(e + 1)) ++ascending_prefix;
  }
  EXPECT_LT(ascending_prefix, 45);  // Not sorted.
}

// ------------------------------------------------------------- Lemma 7.

TEST(Lemma7InstanceTest, StructureMatchesTheProof) {
  const int64_t n = 100;
  const int64_t u_n = 10;
  const double delta = 0.5;
  Result<Lemma7Instance> built = MakeLemma7Instance(n, u_n, delta);
  ASSERT_TRUE(built.ok());
  const Instance& instance = built->instance;

  // e* is the true maximum.
  EXPECT_EQ(instance.MaxElement(), built->claimed_max);
  // Exactly u_n elements within delta of the maximum (E2 plus e*).
  EXPECT_EQ(instance.CountWithin(delta), u_n);
  // E1 elements are strictly farther than delta from e*, but all non-e*
  // elements are mutually within delta.
  for (ElementId e = u_n; e < n; ++e) {
    EXPECT_GT(instance.Distance(0, e), delta);
  }
  for (ElementId a = 1; a < n; ++a) {
    for (ElementId b = a + 1; b < n; ++b) {
      EXPECT_LE(instance.Distance(a, b), delta)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Lemma7InstanceTest, Validation) {
  EXPECT_FALSE(MakeLemma7Instance(1, 1, 0.5).ok());
  EXPECT_FALSE(MakeLemma7Instance(10, 0, 0.5).ok());
  EXPECT_FALSE(MakeLemma7Instance(10, 11, 0.5).ok());
  EXPECT_FALSE(MakeLemma7Instance(10, 5, 0.0).ok());
}

TEST(Lemma7InstanceTest, EdgeCaseUnEqualsOne) {
  Result<Lemma7Instance> built = MakeLemma7Instance(20, 1, 1.0);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->instance.CountWithin(1.0), 1);
}

// ---------------------------------------------------------------- DOTS.

TEST(DotsTest, StandardCollectionMatchesPaper) {
  DotsDataset dots = DotsDataset::Standard();
  EXPECT_EQ(dots.size(), 71);  // 100..1500 step 20.
  EXPECT_EQ(dots.dot_counts().front(), 100);
  EXPECT_EQ(dots.dot_counts().back(), 1500);
}

TEST(DotsTest, GoldenSetMatchesPaper) {
  DotsDataset golden = DotsDataset::GoldenSet();
  EXPECT_EQ(golden.size(), 31);  // 200..800 step 20.
  EXPECT_EQ(golden.dot_counts().front(), 200);
  EXPECT_EQ(golden.dot_counts().back(), 800);
}

TEST(DotsTest, InstanceValueIsNegatedCount) {
  DotsDataset dots = DotsDataset::Standard();
  Instance instance = dots.ToInstance();
  // Max value = fewest dots = the 100-dot image (element 0).
  EXPECT_EQ(instance.MaxElement(), 0);
  EXPECT_DOUBLE_EQ(instance.value(0), -100.0);
}

TEST(DotsTest, SampleIsDeterministicSubset) {
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sample = dots.Sample(50, /*seed=*/4);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 50);
  std::set<int64_t> all(dots.dot_counts().begin(), dots.dot_counts().end());
  for (int64_t c : sample->dot_counts()) EXPECT_TRUE(all.count(c) > 0);
  Result<DotsDataset> again = dots.Sample(50, /*seed=*/4);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(sample->dot_counts(), again->dot_counts());
  EXPECT_FALSE(dots.Sample(72, 1).ok());
}

TEST(DotsTest, RangeValidation) {
  EXPECT_FALSE(DotsDataset::Range(0, 10, 1).ok());
  EXPECT_FALSE(DotsDataset::Range(10, 5, 1).ok());
  EXPECT_FALSE(DotsDataset::Range(10, 20, 0).ok());
}

// ---------------------------------------------------------------- CARS.

TEST(CarsTest, StandardCatalogMatchesPaperConstraints) {
  CarsDataset cars = CarsDataset::Standard(/*seed=*/5);
  EXPECT_EQ(cars.size(), 110);
  std::vector<double> prices;
  std::set<std::string> make_model_year;
  for (const Car& car : cars.cars()) {
    EXPECT_GE(car.price, 14000.0);
    EXPECT_LE(car.price, 130000.0);
    prices.push_back(car.price);
    make_model_year.insert(car.make + "|" + car.model + "|" +
                           std::to_string(car.year));
    EXPECT_FALSE(car.make.empty());
    EXPECT_FALSE(car.model.empty());
    EXPECT_FALSE(car.body_style.empty());
  }
  // Pairwise gaps >= $500.
  std::sort(prices.begin(), prices.end());
  for (size_t i = 1; i < prices.size(); ++i) {
    EXPECT_GE(prices[i] - prices[i - 1], 500.0 - 1e-9);
  }
  // No repeated (make, model, year).
  EXPECT_EQ(make_model_year.size(), 110u);
}

TEST(CarsTest, InstanceUsesPrice) {
  CarsDataset cars = CarsDataset::Standard(/*seed=*/6);
  Instance instance = cars.ToInstance();
  const ElementId max_elem = instance.MaxElement();
  double max_price = 0.0;
  for (const Car& car : cars.cars()) max_price = std::max(max_price, car.price);
  EXPECT_DOUBLE_EQ(instance.value(max_elem), max_price);
}

TEST(CarsTest, GenerateValidation) {
  EXPECT_FALSE(CarsDataset::Generate(0, 1).ok());
  EXPECT_FALSE(CarsDataset::Generate(10, 1, 5000.0, 5000.0).ok());
  // Grid too small: 1000-dollar span has only 3 slots.
  EXPECT_FALSE(CarsDataset::Generate(10, 1, 10000.0, 11000.0).ok());
}

TEST(CarsTest, SampleKeepsConstraints) {
  CarsDataset cars = CarsDataset::Standard(/*seed=*/7);
  Result<CarsDataset> sample = cars.Sample(50, /*seed=*/8);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 50);
  std::vector<double> prices;
  for (const Car& car : sample->cars()) prices.push_back(car.price);
  std::sort(prices.begin(), prices.end());
  for (size_t i = 1; i < prices.size(); ++i) {
    EXPECT_GE(prices[i] - prices[i - 1], 500.0 - 1e-9);
  }
}

TEST(CarsTest, WorkerModelBucketsMatchFigure2b) {
  PersistentBiasComparator::Options options = CarsWorkerModel();
  ASSERT_EQ(options.buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(options.buckets[0].max_relative_difference, 0.10);
  EXPECT_DOUBLE_EQ(options.buckets[0].preferred_correct_prob, 0.60);
  EXPECT_DOUBLE_EQ(options.buckets[1].max_relative_difference, 0.20);
  EXPECT_DOUBLE_EQ(options.buckets[1].preferred_correct_prob, 0.70);
}

// -------------------------------------------------------------- Search.

TEST(SearchTest, GeneratedListHasPaperStructure) {
  SearchQueryOptions options;
  Result<SearchQueryDataset> dataset = SearchQueryDataset::Generate(
      "asymmetric tsp best approximation", options, /*seed=*/9);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 50);

  std::set<int64_t> positions;
  for (const SearchResult& r : dataset->results()) {
    EXPECT_GE(r.serp_position, 1);
    EXPECT_LE(r.serp_position, 100);
    positions.insert(r.serp_position);
    EXPECT_GT(r.relevance, 0.0);
    EXPECT_LE(r.relevance, 1.0);
    EXPECT_NE(r.title.find("asymmetric tsp"), std::string::npos);
  }
  EXPECT_EQ(positions.size(), 50u);  // Distinct SERP positions.
}

TEST(SearchTest, UniqueBestWithNearBestBlock) {
  SearchQueryOptions options;
  options.near_best_count = 7;
  Result<SearchQueryDataset> dataset =
      SearchQueryDataset::Generate("steiner tree best approximation", options,
                                   /*seed=*/10);
  ASSERT_TRUE(dataset.ok());
  Instance instance = dataset->ToInstance();
  // Unique maximum.
  EXPECT_EQ(instance.Rank(instance.MaxElement()), 1);
  // The suggested naive delta captures the near-best block (roughly
  // near_best_count + 1 elements including the best).
  const double delta = dataset->SuggestedNaiveDelta();
  const int64_t u_n = instance.CountWithin(delta);
  EXPECT_GE(u_n, 4);
  EXPECT_LE(u_n, 12);
}

TEST(SearchTest, GenerateValidation) {
  SearchQueryOptions bad;
  bad.num_results = 1;
  EXPECT_FALSE(SearchQueryDataset::Generate("q", bad, 1).ok());
  SearchQueryOptions bad2;
  bad2.top_k = 10;
  bad2.num_results = 20;
  EXPECT_FALSE(SearchQueryDataset::Generate("q", bad2, 1).ok());
  SearchQueryOptions bad3;
  bad3.near_best_count = 60;
  EXPECT_FALSE(SearchQueryDataset::Generate("q", bad3, 1).ok());
  SearchQueryOptions bad4;
  bad4.best_margin = 0.7;
  EXPECT_FALSE(SearchQueryDataset::Generate("q", bad4, 1).ok());
}

TEST(SearchTest, ExpertModelResolvesWhatNaiveCannot) {
  Result<SearchQueryDataset> dataset =
      SearchQueryDataset::Generate("q", {}, /*seed=*/11);
  ASSERT_TRUE(dataset.ok());
  const double naive_delta = dataset->SuggestedNaiveDelta();
  const ThresholdComparator::Options naive =
      SearchNaiveWorkerModel(naive_delta);
  const ThresholdComparator::Options expert = SearchExpertWorkerModel();
  EXPECT_GT(naive.model.delta, expert.model.delta);
  EXPECT_EQ(expert.model.epsilon, 0.0);
}

// ------------------------------------------------------------------ I/O.

TEST(DatasetIoTest, InstanceRoundTrip) {
  Result<Instance> instance = UniformInstance(50, /*seed=*/31, -5.0, 5.0);
  ASSERT_TRUE(instance.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteInstanceCsv(*instance, out).ok());

  std::istringstream in(out.str());
  Result<Instance> loaded = ReadInstanceCsv(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), instance->size());
  for (ElementId e = 0; e < instance->size(); ++e) {
    EXPECT_DOUBLE_EQ(loaded->value(e), instance->value(e));  // %.17g exact.
  }
}

TEST(DatasetIoTest, InstanceReadValidation) {
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
  {
    std::istringstream in("wrong,header\n0,1.0\n");
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
  {
    std::istringstream in("id,value\n1,1.0\n");  // Non-dense ids.
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
  {
    std::istringstream in("id,value\n0,abc\n");
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
  {
    std::istringstream in("id,value\n");  // No rows.
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
  {
    std::istringstream in("id,value\n0,1.0,extra\n");
    EXPECT_FALSE(ReadInstanceCsv(in).ok());
  }
}

TEST(DatasetIoTest, DotsRoundTrip) {
  DotsDataset dots = DotsDataset::Standard();
  std::ostringstream out;
  ASSERT_TRUE(WriteDotsCsv(dots, out).ok());
  std::istringstream in(out.str());
  Result<DotsDataset> loaded = ReadDotsCsv(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dot_counts(), dots.dot_counts());
}

TEST(DatasetIoTest, DotsFromCountsValidation) {
  EXPECT_FALSE(DotsDataset::FromCounts({}).ok());
  EXPECT_FALSE(DotsDataset::FromCounts({100, 0}).ok());
  EXPECT_TRUE(DotsDataset::FromCounts({100, 200}).ok());
}

TEST(DatasetIoTest, CarsRoundTrip) {
  CarsDataset cars = CarsDataset::Standard(/*seed=*/33);
  std::ostringstream out;
  ASSERT_TRUE(WriteCarsCsv(cars, out).ok());
  std::istringstream in(out.str());
  Result<CarsDataset> loaded = ReadCarsCsv(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), cars.size());
  for (int64_t i = 0; i < cars.size(); ++i) {
    const Car& a = cars.cars()[static_cast<size_t>(i)];
    const Car& b = loaded->cars()[static_cast<size_t>(i)];
    EXPECT_EQ(a.make, b.make);
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.body_style, b.body_style);
    EXPECT_EQ(a.year, b.year);
    EXPECT_EQ(a.doors, b.doors);
    EXPECT_NEAR(a.price, b.price, 0.005);  // Written with 2 decimals.
  }
}

TEST(DatasetIoTest, CarsWriteRejectsCommasInFields) {
  Result<CarsDataset> cars = CarsDataset::FromCars(
      {{"Make,WithComma", "Model", "sedan", 2013, 4, 20000.0}});
  ASSERT_TRUE(cars.ok());
  std::ostringstream out;
  EXPECT_FALSE(WriteCarsCsv(*cars, out).ok());
}

TEST(DatasetIoTest, CarsFromCarsValidation) {
  EXPECT_FALSE(CarsDataset::FromCars({}).ok());
  EXPECT_FALSE(
      CarsDataset::FromCars({{"Make", "Model", "sedan", 2013, 4, -5.0}}).ok());
}

TEST(DatasetIoTest, CarsReadValidation) {
  {
    std::istringstream in("wrong\n");
    EXPECT_FALSE(ReadCarsCsv(in).ok());
  }
  {
    std::istringstream in(
        "make,model,body_style,year,doors,price\nBMW,X,sedan,abc,4,100\n");
    EXPECT_FALSE(ReadCarsCsv(in).ok());
  }
  {
    std::istringstream in("make,model,body_style,year,doors,price\nBMW,X\n");
    EXPECT_FALSE(ReadCarsCsv(in).ok());
  }
}

}  // namespace
}  // namespace crowdmax
