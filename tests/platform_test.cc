// Tests for the crowdsourcing platform simulator: workers, gold quality
// control, batch aggregation, step accounting and the Comparator adapter.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "platform/gold.h"
#include "platform/platform.h"
#include "platform/worker.h"

namespace crowdmax {
namespace {

// --------------------------------------------------------------- Worker.

TEST(SimulatedWorkerTest, HonestWorkerFollowsModel) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  SimulatedWorker worker(0, &oracle, {}, /*seed=*/1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(worker.Answer({0, 1}), 1);
  }
  EXPECT_EQ(worker.tasks_answered(), 20);
  EXPECT_FALSE(worker.is_spammer());
}

TEST(SimulatedWorkerTest, SlipNoiseFlipsAnswers) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  SimulatedWorker::Options options;
  options.slip_probability = 0.25;
  SimulatedWorker worker(0, &oracle, options, /*seed=*/2);
  int wrong = 0;
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    if (worker.Answer({0, 1}) == 0) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / kTrials, 0.25, 0.03);
}

TEST(SimulatedWorkerTest, SpammerIsACoin) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  SimulatedWorker::Options options;
  options.spammer = true;
  SimulatedWorker worker(7, &oracle, options, /*seed=*/3);
  int wins_b = 0;
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    if (worker.Answer({0, 1}) == 1) ++wins_b;
  }
  EXPECT_NEAR(static_cast<double>(wins_b) / kTrials, 0.5, 0.03);
  EXPECT_TRUE(worker.is_spammer());
}

// ----------------------------------------------------------------- Gold.

TEST(GoldQualityControlTest, UntestedWorkersAreTrusted) {
  Instance gold({1.0, 2.0});
  GoldQualityControl control(&gold, {});
  EXPECT_TRUE(control.IsTrusted(0));
  EXPECT_EQ(control.stats(0).asked, 0);
}

TEST(GoldQualityControlTest, AccurateWorkerStaysTrusted) {
  Instance gold({1.0, 2.0});
  GoldQualityControl control(&gold, {});
  for (int i = 0; i < 10; ++i) control.RecordGoldAnswer(0, {0, 1}, 1);
  EXPECT_TRUE(control.IsTrusted(0));
  EXPECT_EQ(control.stats(0).correct, 10);
}

TEST(GoldQualityControlTest, InaccurateWorkerLosesTrust) {
  Instance gold({1.0, 2.0});
  GoldQualityControl control(&gold, {});
  for (int i = 0; i < 10; ++i) control.RecordGoldAnswer(3, {0, 1}, 0);
  EXPECT_FALSE(control.IsTrusted(3));
  EXPECT_EQ(control.num_untrusted(), 1);
}

TEST(GoldQualityControlTest, GracePeriodBeforeJudging) {
  Instance gold({1.0, 2.0});
  GoldQualityControl::Options options;
  options.min_gold_answers = 5;
  GoldQualityControl control(&gold, options);
  for (int i = 0; i < 4; ++i) control.RecordGoldAnswer(0, {0, 1}, 0);
  EXPECT_TRUE(control.IsTrusted(0));  // Only 4 answers; still in grace.
  control.RecordGoldAnswer(0, {0, 1}, 0);
  EXPECT_FALSE(control.IsTrusted(0));
}

TEST(GoldQualityControlTest, SeventyPercentBoundary) {
  Instance gold({1.0, 2.0});
  GoldQualityControl::Options options;
  options.min_gold_answers = 10;
  GoldQualityControl control(&gold, options);
  // 7 correct, 3 wrong => exactly 0.7 => trusted.
  for (int i = 0; i < 7; ++i) control.RecordGoldAnswer(0, {0, 1}, 1);
  for (int i = 0; i < 3; ++i) control.RecordGoldAnswer(0, {0, 1}, 0);
  EXPECT_TRUE(control.IsTrusted(0));
  // One more wrong answer drops below 0.7.
  control.RecordGoldAnswer(0, {0, 1}, 0);
  EXPECT_FALSE(control.IsTrusted(0));
}

// ------------------------------------------------------------- Platform.

std::vector<ComparisonTask> MakeGoldTasks(const Instance& gold) {
  std::vector<ComparisonTask> tasks;
  for (ElementId a = 0; a < gold.size(); ++a) {
    for (ElementId b = a + 1; b < gold.size(); ++b) tasks.push_back({a, b});
  }
  return tasks;
}

TEST(CrowdPlatformTest, CreateValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;

  EXPECT_FALSE(
      CrowdPlatform::Create(nullptr, &instance, {}, options).ok());
  EXPECT_FALSE(CrowdPlatform::Create(&oracle, nullptr, {}, options).ok());

  PlatformOptions bad_workers = options;
  bad_workers.num_workers = 0;
  EXPECT_FALSE(
      CrowdPlatform::Create(&oracle, &instance, {}, bad_workers).ok());

  PlatformOptions bad_spam = options;
  bad_spam.spammer_fraction = 1.0;
  EXPECT_FALSE(CrowdPlatform::Create(&oracle, &instance, {}, bad_spam).ok());

  // Gold task referencing an element outside the gold instance.
  EXPECT_FALSE(
      CrowdPlatform::Create(&oracle, &instance, {{0, 9}}, options).ok());
}

TEST(CrowdPlatformTest, SubmitBatchValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 5;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  EXPECT_FALSE((*platform)->SubmitBatch({}, 1).ok());
  EXPECT_FALSE((*platform)->SubmitBatch({{0, 1}}, 0).ok());
  EXPECT_FALSE((*platform)->SubmitBatch({{0, 1}}, 6).ok());
}

TEST(CrowdPlatformTest, MajorityAggregationWithHonestPool) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 21;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  Result<std::vector<TaskOutcome>> outcomes =
      (*platform)->SubmitBatch({{0, 1}}, 7);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 1u);
  EXPECT_EQ((*outcomes)[0].majority_winner, 1);
  EXPECT_TRUE((*outcomes)[0].unanimous);
  EXPECT_EQ((*outcomes)[0].counted_votes, 7);
  EXPECT_EQ((*platform)->total_votes(), 7);
  EXPECT_EQ((*platform)->logical_steps(), 1);
}

TEST(CrowdPlatformTest, GoldControlSuppressesSpammerVotes) {
  // A pool with heavy spam: after enough gold exposure, spammers get
  // flagged and their votes stop counting.
  Result<Instance> gold_instance = UniformInstance(20, /*seed=*/5, 0.0, 10.0);
  ASSERT_TRUE(gold_instance.ok());
  OracleComparator oracle(&*gold_instance);
  PlatformOptions options;
  options.num_workers = 20;
  options.spammer_fraction = 0.4;
  options.gold_task_probability = 0.5;
  options.seed = 7;
  auto platform = CrowdPlatform::Create(
      &oracle, &*gold_instance, MakeGoldTasks(*gold_instance), options);
  ASSERT_TRUE(platform.ok());

  // Warm up the gold ledger.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 10).ok());
  }
  EXPECT_GT((*platform)->gold_votes(), 0);
  EXPECT_GT((*platform)->gold().num_untrusted(), 0);
  EXPECT_GT((*platform)->discarded_votes(), 0);
}

TEST(CrowdPlatformTest, PhysicalStepsScaleWithLoad) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.worker_capacity_per_physical_step = 1;
  options.spammer_fraction = 0.0;
  options.gold_task_probability = 0.0;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  // 4 tasks x 5 votes = 20 assignments; capacity 10/step => 2 physical
  // steps for this single logical step.
  std::vector<ComparisonTask> batch(4, ComparisonTask{0, 1});
  ASSERT_TRUE((*platform)->SubmitBatch(batch, 5).ok());
  EXPECT_EQ((*platform)->logical_steps(), 1);
  EXPECT_EQ((*platform)->physical_steps(), 2);
}

TEST(CrowdPlatformTest, DeterministicForSameSeed) {
  Result<Instance> instance = UniformInstance(30, /*seed=*/9);
  ASSERT_TRUE(instance.ok());
  auto run = [&](uint64_t seed) {
    ThresholdComparator crowd(&*instance, ThresholdModel{0.05, 0.1},
                              /*seed=*/100);
    PlatformOptions options;
    options.seed = seed;
    auto platform = CrowdPlatform::Create(&crowd, &*instance, {}, options);
    CROWDMAX_CHECK(platform.ok());
    std::vector<ElementId> winners;
    for (ElementId e = 1; e < 10; ++e) {
      auto outcomes = (*platform)->SubmitBatch({{0, e}}, 5);
      CROWDMAX_CHECK(outcomes.ok());
      winners.push_back((*outcomes)[0].majority_winner);
    }
    return winners;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(CrowdPlatformTest, TranscriptRecordsEveryVote) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.gold_task_probability = 0.0;
  options.record_transcript = true;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 3).ok());
  ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}, {1, 0}}, 5).ok());

  const std::vector<TaskOutcome>& transcript = (*platform)->transcript();
  ASSERT_EQ(transcript.size(), 3u);
  EXPECT_EQ(transcript[0].logical_step, 1);
  EXPECT_EQ(transcript[1].logical_step, 2);
  EXPECT_EQ(transcript[0].votes.size(), 3u);
  EXPECT_EQ(transcript[2].votes.size(), 5u);

  std::ostringstream csv;
  ASSERT_TRUE((*platform)->ExportTranscriptCsv(csv).ok());
  const std::string s = csv.str();
  // Header plus one row per vote (3 + 5 + 5 = 13).
  EXPECT_EQ(static_cast<int>(std::count(s.begin(), s.end(), '\n')), 14);
  EXPECT_NE(s.find("logical_step,a,b,worker_id"), std::string::npos);
}

TEST(CrowdPlatformTest, TranscriptExportRequiresOptIn) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 1).ok());
  EXPECT_TRUE((*platform)->transcript().empty());
  std::ostringstream csv;
  Status status = (*platform)->ExportTranscriptCsv(csv);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(PlatformComparatorTest, AdaptsPlatformToComparatorInterface) {
  Result<Instance> instance = UniformInstance(40, /*seed=*/11, 0.0, 100.0);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  PlatformOptions options;
  options.num_workers = 15;
  options.spammer_fraction = 0.0;
  auto platform = CrowdPlatform::Create(&oracle, &*instance, {}, options);
  ASSERT_TRUE(platform.ok());

  PlatformComparator cmp(platform->get(), /*votes_per_task=*/3);
  const ElementId max_elem = instance->MaxElement();
  for (ElementId e = 0; e < instance->size(); ++e) {
    if (e == max_elem) continue;
    EXPECT_EQ(cmp.Compare(max_elem, e), max_elem);
  }
  EXPECT_EQ(cmp.num_comparisons(), instance->size() - 1);
  EXPECT_EQ((*platform)->logical_steps(), instance->size() - 1);
}

TEST(CrowdPlatformTest, HeterogeneousPoolValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 3;

  // Wrong model count.
  EXPECT_FALSE(CrowdPlatform::CreateHeterogeneous({&oracle, &oracle},
                                                  &instance, {}, options)
                   .ok());
  // Null model.
  EXPECT_FALSE(CrowdPlatform::CreateHeterogeneous(
                   {&oracle, nullptr, &oracle}, &instance, {}, options)
                   .ok());
  // Valid.
  EXPECT_TRUE(CrowdPlatform::CreateHeterogeneous(
                  {&oracle, &oracle, &oracle}, &instance, {}, options)
                  .ok());
}

TEST(CrowdPlatformTest, HeterogeneousPoolMixesSkillLevels) {
  // Half the pool resolves everything (tiny threshold), half is blind
  // (huge threshold, pure coin). Majority-of-all accuracy on a hard pair
  // should land clearly between the two pure-pool extremes.
  Result<Instance> instance = UniformInstance(10, /*seed=*/71, 0.0, 1.0);
  ASSERT_TRUE(instance.ok());

  std::vector<std::unique_ptr<Comparator>> owned;
  std::vector<Comparator*> models;
  for (int i = 0; i < 10; ++i) {
    const double delta = i < 5 ? 1e-9 : 10.0;
    owned.push_back(std::make_unique<ThresholdComparator>(
        &*instance, ThresholdModel{delta, 0.0},
        /*seed=*/100 + static_cast<uint64_t>(i)));
    models.push_back(owned.back().get());
  }
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.seed = 72;
  auto platform = CrowdPlatform::CreateHeterogeneous(models, &*instance, {},
                                                     options);
  ASSERT_TRUE(platform.ok());

  // Pick the hardest pair (smallest distance): skilled workers always
  // right, blind workers coin-flip => majority of 9 votes is right well
  // above coin level but below certainty... with 5 skilled among 9 drawn,
  // the majority is overwhelmingly correct; just confirm a strong bias.
  ElementId best_a = 0;
  ElementId best_b = 1;
  double best_d = 1e9;
  for (ElementId a = 0; a < instance->size(); ++a) {
    for (ElementId b = a + 1; b < instance->size(); ++b) {
      if (instance->Distance(a, b) < best_d) {
        best_d = instance->Distance(a, b);
        best_a = a;
        best_b = b;
      }
    }
  }
  const ElementId correct =
      instance->value(best_a) >= instance->value(best_b) ? best_a : best_b;
  int correct_majorities = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    auto outcomes = (*platform)->SubmitBatch({{best_a, best_b}}, 9);
    ASSERT_TRUE(outcomes.ok());
    if ((*outcomes)[0].majority_winner == correct) ++correct_majorities;
  }
  const double accuracy =
      static_cast<double>(correct_majorities) / static_cast<double>(kTrials);
  EXPECT_GT(accuracy, 0.9);  // Skilled half dominates the majority.
}

TEST(CrowdPlatformTest, TranscriptCsvRoundTripsVoteFlags) {
  // Spam-heavy pool with gold control: the CSV must carry one row per
  // recorded vote with the counted flag and dispositions matching the
  // in-memory transcript.
  Result<Instance> gold_instance = UniformInstance(20, /*seed=*/5, 0.0, 10.0);
  ASSERT_TRUE(gold_instance.ok());
  OracleComparator oracle(&*gold_instance);
  PlatformOptions options;
  options.num_workers = 20;
  options.spammer_fraction = 0.4;
  options.gold_task_probability = 0.5;
  options.record_transcript = true;
  options.seed = 7;
  auto platform = CrowdPlatform::Create(
      &oracle, &*gold_instance, MakeGoldTasks(*gold_instance), options);
  ASSERT_TRUE(platform.ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 10).ok());
  }
  ASSERT_GT((*platform)->discarded_votes(), 0);

  std::ostringstream csv;
  ASSERT_TRUE((*platform)->ExportTranscriptCsv(csv).ok());
  std::istringstream in(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // Header.
  EXPECT_NE(line.find("counted"), std::string::npos);
  EXPECT_NE(line.find("vote_disposition"), std::string::npos);

  int64_t rows = 0;
  int64_t counted_rows = 0;
  int64_t discarded_rows = 0;
  int64_t total_votes = 0;
  int64_t counted_votes = 0;
  for (const TaskOutcome& outcome : (*platform)->transcript()) {
    total_votes += static_cast<int64_t>(outcome.votes.size());
    counted_votes += outcome.counted_votes;
  }
  while (std::getline(in, line)) {
    ++rows;
    std::vector<std::string> fields;
    std::istringstream fields_in(line);
    std::string field;
    while (std::getline(fields_in, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 11u) << line;
    if (fields[5] == "1") {
      ++counted_rows;
      EXPECT_EQ(fields[8], "counted") << line;
    } else if (fields[8] == "discarded") {
      ++discarded_rows;
    }
    // The retry hint is disposition-level: answered tasks need no retry,
    // dropped/no-quorum tasks suggest re-issue one step later.
    EXPECT_EQ(fields[10], fields[9] == "answered" ? "0" : "1") << line;
  }
  // One row per recorded vote; flags reconcile with the counters.
  EXPECT_EQ(rows, total_votes);
  EXPECT_EQ(counted_rows, counted_votes);
  EXPECT_EQ(discarded_rows, (*platform)->discarded_votes());
}

// Quote-aware RFC-4180 parser: fields may be quoted, embedded quotes are
// doubled, and quoted fields may span physical lines.
std::vector<std::vector<std::string>> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      record.push_back(field);
      field.clear();
    } else if (c == '\n') {
      record.push_back(field);
      field.clear();
      records.push_back(record);
      record.clear();
    } else {
      field += c;
    }
  }
  return records;
}

TEST(CrowdPlatformTest, TranscriptCsvEscapesAdversarialLabels) {
  // Dataset-derived item names may contain the full CSV arsenal: commas,
  // quotes and newlines. The labeled export must escape them so a
  // quote-aware parser recovers every field of every row intact.
  Instance instance({1.0, 5.0, 9.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.gold_task_probability = 0.0;
  options.record_transcript = true;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());
  ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}, {1, 2}}, 3).ok());

  const std::vector<std::string> labels = {
      "plain", "comma, inside", "say \"cheese\"\nsecond line"};
  auto labeler = [&](ElementId id) {
    return labels[static_cast<size_t>(id)];
  };

  std::ostringstream csv;
  ASSERT_TRUE((*platform)->ExportTranscriptCsv(csv, labeler).ok());
  const std::vector<std::vector<std::string>> records = ParseCsv(csv.str());
  // Header plus one record per vote (2 tasks x 3 votes) — the embedded
  // newline must NOT add records.
  ASSERT_EQ(records.size(), 7u);
  ASSERT_EQ(records[0].size(), 13u);
  EXPECT_EQ(records[0][3], "label_a");
  EXPECT_EQ(records[0][4], "label_b");
  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& row = records[r];
    ASSERT_EQ(row.size(), 13u);
    // Labels round-trip to the exact labeler output for the row's ids.
    const auto a = static_cast<size_t>(std::stoll(row[1]));
    const auto b = static_cast<size_t>(std::stoll(row[2]));
    EXPECT_EQ(row[3], labels[a]);
    EXPECT_EQ(row[4], labels[b]);
    // Disposition columns stay machine-readable; an answered task carries
    // no retry hint.
    EXPECT_EQ(row[10], "counted");
    EXPECT_EQ(row[11], "answered");
    EXPECT_EQ(row[12], "0");
  }

  // The unlabeled export keeps the same shape minus the label columns.
  std::ostringstream plain;
  ASSERT_TRUE((*platform)->ExportTranscriptCsv(plain).ok());
  const auto plain_records = ParseCsv(plain.str());
  ASSERT_EQ(plain_records.size(), 7u);
  EXPECT_EQ(plain_records[0].size(), 11u);
}

TEST(PlatformAdapterTest, FactoriesValidateArguments) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 5;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  EXPECT_FALSE(PlatformComparator::Create(nullptr, 1).ok());
  EXPECT_FALSE(PlatformComparator::Create(platform->get(), 0).ok());
  EXPECT_FALSE(PlatformComparator::Create(platform->get(), 6).ok());
  auto comparator = PlatformComparator::Create(platform->get(), 3);
  ASSERT_TRUE(comparator.ok());
  EXPECT_EQ((*comparator)->Compare(0, 1), 1);

  EXPECT_FALSE(PlatformBatchExecutor::Create(nullptr, 1).ok());
  EXPECT_FALSE(PlatformBatchExecutor::Create(platform->get(), 0).ok());
  EXPECT_FALSE(PlatformBatchExecutor::Create(platform->get(), 6).ok());
  auto executor = PlatformBatchExecutor::Create(platform->get(), 3);
  ASSERT_TRUE(executor.ok());
  EXPECT_EQ((*executor)->ExecuteBatch({{0, 1}})[0], 1);
}

TEST(PlatformAdapterTest, ResetCountersSnapshotsPlatformUsage) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.gold_task_probability = 0.0;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  // Two executors over one platform, mimicking the naive/expert phases of
  // Algorithm 1. Phase attribution must not double-count phase 1's votes.
  auto naive = PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  auto expert = PlatformBatchExecutor::Create(platform->get(), /*votes=*/5);
  ASSERT_TRUE(naive.ok() && expert.ok());

  (*naive)->ExecuteBatch({{0, 1}, {1, 2}});  // 2 tasks x 3 votes.
  (*expert)->ResetCounters();                // Expert phase starts here.
  (*expert)->ExecuteBatch({{0, 2}});         // 1 task x 5 votes.

  EXPECT_EQ((*naive)->platform_votes_since_reset(), 11);
  EXPECT_EQ((*expert)->platform_votes_since_reset(), 5);
  EXPECT_EQ((*expert)->platform_logical_steps_since_reset(), 1);
  EXPECT_EQ((*expert)->logical_steps(), 1);

  // ResetCounters through the base interface re-snapshots.
  BatchExecutor* base = naive->get();
  base->ResetCounters();
  EXPECT_EQ((*naive)->platform_votes_since_reset(), 0);
  EXPECT_EQ(base->logical_steps(), 0);
}

// Regression for the out-of-order accounting sweep: the executor-own
// tallies (executor_votes / executor_discarded_votes) and the banked
// latency are folded in per submission, from that submission's own
// outcomes, so two executors interleaving on one platform attribute every
// vote and every round-trip draw exactly once — no matter which executor
// submitted last. The *_since_reset() accessors, being platform-wide
// deltas, cannot make that distinction; the executor-own tallies must.
TEST(PlatformAdapterTest, InterleavedExecutorsAttributeVotesAndLatencyOnce) {
  Instance instance({1.0, 2.0, 3.0, 4.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.gold_task_probability = 0.0;
  options.latency.base_micros = 500;
  options.latency.per_task_micros = 100;
  options.latency.seed = 11;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());

  auto naive = PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  auto expert = PlatformBatchExecutor::Create(platform->get(), /*votes=*/5);
  ASSERT_TRUE(naive.ok() && expert.ok());

  // Interleave: naive, expert, naive. Each executor banks only its own
  // submissions' votes and latency draws at submission time.
  (*naive)->ExecuteBatch({{0, 1}, {2, 3}});        // 2 tasks x 3 votes.
  const int64_t naive_first_latency =
      (*platform)->last_batch_latency_micros();
  (*expert)->ExecuteBatch({{0, 2}});               // 1 task x 5 votes.
  const int64_t expert_latency = (*platform)->last_batch_latency_micros();
  (*naive)->ExecuteBatch({{1, 3}});                // 1 task x 3 votes.
  const int64_t naive_second_latency =
      (*platform)->last_batch_latency_micros();

  EXPECT_EQ((*naive)->executor_votes(), 9);
  EXPECT_EQ((*expert)->executor_votes(), 5);
  EXPECT_EQ((*naive)->executor_discarded_votes(), 0);
  EXPECT_EQ((*expert)->executor_discarded_votes(), 0);
  // Per-task latency terms differ by batch size, so a swapped or
  // double-counted draw cannot cancel out.
  EXPECT_EQ((*naive)->TakeSimulatedLatencyMicros(),
            naive_first_latency + naive_second_latency);
  EXPECT_EQ((*expert)->TakeSimulatedLatencyMicros(), expert_latency);
  // Draining is destructive and exact: nothing is left behind, and the
  // platform-wide total equals the sum of what the executors banked.
  EXPECT_EQ((*naive)->TakeSimulatedLatencyMicros(), 0);
  EXPECT_EQ((*expert)->TakeSimulatedLatencyMicros(), 0);
  EXPECT_EQ((*platform)->total_latency_micros(),
            naive_first_latency + expert_latency + naive_second_latency);

  // ResetCounters zeroes the executor-own tallies and any undrained
  // latency along with the platform snapshots.
  (*expert)->ExecuteBatch({{1, 2}});
  (*expert)->ResetCounters();
  EXPECT_EQ((*expert)->executor_votes(), 0);
  EXPECT_EQ((*expert)->TakeSimulatedLatencyMicros(), 0);
}

TEST(PlatformComparatorTest, SimulatedExpertUsesSevenVotes) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.gold_task_probability = 0.0;
  auto platform = CrowdPlatform::Create(&oracle, &instance, {}, options);
  ASSERT_TRUE(platform.ok());
  PlatformComparator expert(platform->get(), /*votes_per_task=*/7);
  expert.Compare(0, 1);
  EXPECT_EQ((*platform)->total_votes(), 7);
}

}  // namespace
}  // namespace crowdmax
