// Tests for the baseline algorithms: single-class 2-MaxFind wrappers, the
// Marcus recursive tournament and the Venetis replicated ladder.

#include <vector>

#include <gtest/gtest.h>

#include "baselines/adaptive.h"
#include "baselines/marcus.h"
#include "baselines/single_class.h"
#include "baselines/venetis.h"
#include "core/cost.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

// ----------------------------------------------------------- SingleClass.

TEST(SingleClassTest, NaiveAndExpertBillCorrectly) {
  Result<Instance> instance = UniformInstance(100, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator worker(&*instance);

  Result<SingleClassResult> naive =
      TwoMaxFindNaiveOnly(instance->AllElements(), &worker);
  Result<SingleClassResult> expert =
      TwoMaxFindExpertOnly(instance->AllElements(), &worker);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(expert.ok());

  EXPECT_EQ(naive->best, instance->MaxElement());
  EXPECT_EQ(expert->best, instance->MaxElement());
  EXPECT_EQ(naive->billed_to, WorkerClass::kNaive);
  EXPECT_EQ(expert->billed_to, WorkerClass::kExpert);

  CostModel model;
  model.naive_cost = 1.0;
  model.expert_cost = 50.0;
  EXPECT_DOUBLE_EQ(naive->CostUnder(model),
                   static_cast<double>(naive->paid_comparisons));
  EXPECT_DOUBLE_EQ(expert->CostUnder(model),
                   50.0 * static_cast<double>(expert->paid_comparisons));
}

TEST(SingleClassTest, NaiveOnlyIsInaccurateWithLargeUn) {
  // The paper's Figure 3: 2-MaxFind-naive returns low-ranked elements as
  // u_n grows. Averaged over seeds, its returned rank must be clearly
  // worse than expert-only.
  int64_t naive_rank_sum = 0;
  int64_t expert_rank_sum = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(400, /*seed=*/100 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta_n = instance->DeltaForU(40);
    const double delta_e = instance->DeltaForU(2);
    ThresholdComparator naive_worker(&*instance,
                                     ThresholdModel{delta_n, 0.0},
                                     /*seed=*/200 + static_cast<uint64_t>(t));
    ThresholdComparator expert_worker(&*instance,
                                      ThresholdModel{delta_e, 0.0},
                                      /*seed=*/300 + static_cast<uint64_t>(t));
    Result<SingleClassResult> naive =
        TwoMaxFindNaiveOnly(instance->AllElements(), &naive_worker);
    Result<SingleClassResult> expert =
        TwoMaxFindExpertOnly(instance->AllElements(), &expert_worker);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(expert.ok());
    naive_rank_sum += instance->Rank(naive->best);
    expert_rank_sum += instance->Rank(expert->best);
  }
  EXPECT_GT(naive_rank_sum, 2 * expert_rank_sum);
}

// ---------------------------------------------------------------- Marcus.

TEST(MarcusTest, ExactWithOracle) {
  for (int64_t n : {2, 7, 30, 101}) {
    Result<Instance> instance =
        UniformInstance(n, /*seed=*/static_cast<uint64_t>(n));
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    Result<MaxFindResult> result =
        MarcusTournamentMax(instance->AllElements(), &oracle);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_EQ(result->best, instance->MaxElement()) << "n=" << n;
  }
}

TEST(MarcusTest, Validation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  EXPECT_FALSE(MarcusTournamentMax({}, &oracle).ok());
  EXPECT_FALSE(MarcusTournamentMax({0, 0}, &oracle).ok());
  MarcusOptions bad;
  bad.group_size = 1;
  EXPECT_FALSE(MarcusTournamentMax({0, 1}, &oracle, bad).ok());
}

TEST(MarcusTest, ComparisonCountScalesLinearlyInGroups) {
  // Groups of g cost C(g,2) per group and shrink by factor g per level:
  // total ~ n * (g-1) / 2 * (1 + 1/g + ...) comparisons.
  Result<Instance> instance = UniformInstance(625, /*seed=*/3);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  MarcusOptions options;
  options.group_size = 5;
  Result<MaxFindResult> result =
      MarcusTournamentMax(instance->AllElements(), &oracle, options);
  ASSERT_TRUE(result.ok());
  // Levels: 625 -> 125 -> 25 -> 5 -> 1; comparisons = (125+25+5+1)*C(5,2).
  EXPECT_EQ(result->rounds, 4);
  EXPECT_EQ(result->paid_comparisons, (125 + 25 + 5 + 1) * 10);
}

TEST(MarcusTest, SingletonInput) {
  Instance instance({9.0});
  OracleComparator oracle(&instance);
  Result<MaxFindResult> result = MarcusTournamentMax({0}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, 0);
  EXPECT_EQ(result->paid_comparisons, 0);
}

// --------------------------------------------------------------- Venetis.

TEST(VenetisTest, ExactWithOracle) {
  Result<Instance> instance = UniformInstance(64, /*seed=*/4);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  Result<MaxFindResult> result =
      VenetisLadderMax(instance->AllElements(), &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
  EXPECT_EQ(result->rounds, 6);  // log2(64).
  // 63 matches x 3 votes.
  EXPECT_EQ(result->paid_comparisons, 63 * 3);
}

TEST(VenetisTest, Validation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  EXPECT_FALSE(VenetisLadderMax({}, &oracle).ok());
  EXPECT_FALSE(VenetisLadderMax({1, 1}, &oracle).ok());
  VenetisOptions even;
  even.votes_per_match = 4;
  EXPECT_FALSE(VenetisLadderMax({0, 1}, &oracle, even).ok());
  VenetisOptions zero;
  zero.votes_per_match = 0;
  EXPECT_FALSE(VenetisLadderMax({0, 1}, &oracle, zero).ok());
}

TEST(VenetisTest, ReplicationHelpsUnderProbabilisticModel) {
  // Under the probabilistic (DOTS-like) model, majority-of-9 matches are
  // far more reliable than single-vote matches (the regime where Venetis
  // et al.'s replication tuning makes sense).
  int single_correct = 0;
  int replicated_correct = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(32, /*seed=*/500 + static_cast<uint64_t>(t), 1.0, 2.0);
    ASSERT_TRUE(instance.ok());
    RelativeErrorComparator::Options noisy;
    noisy.base_error = 0.35;
    noisy.decay = 3.0;
    RelativeErrorComparator worker_a(&*instance, noisy,
                                     /*seed=*/600 + static_cast<uint64_t>(t));
    RelativeErrorComparator worker_b(&*instance, noisy,
                                     /*seed=*/700 + static_cast<uint64_t>(t));

    VenetisOptions single;
    single.votes_per_match = 1;
    VenetisOptions replicated;
    replicated.votes_per_match = 9;

    Result<MaxFindResult> r1 =
        VenetisLadderMax(instance->AllElements(), &worker_a, single);
    Result<MaxFindResult> r9 =
        VenetisLadderMax(instance->AllElements(), &worker_b, replicated);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r9.ok());
    if (r1->best == instance->MaxElement()) ++single_correct;
    if (r9->best == instance->MaxElement()) ++replicated_correct;
  }
  EXPECT_GT(replicated_correct, single_correct);
}

TEST(VenetisTest, VotesScheduleControlsPerRoundReplication) {
  Result<Instance> instance = UniformInstance(8, /*seed=*/10);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  VenetisOptions options;
  options.votes_schedule = {1, 3, 5};  // Rounds of 4, 2, 1 matches.
  Result<MaxFindResult> result =
      VenetisLadderMax(instance->AllElements(), &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
  // 4 matches x 1 + 2 matches x 3 + 1 match x 5 = 15 votes.
  EXPECT_EQ(result->paid_comparisons, 15);
}

TEST(VenetisTest, ScheduleLastEntryRepeats) {
  Result<Instance> instance = UniformInstance(16, /*seed=*/11);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  VenetisOptions options;
  options.votes_schedule = {1, 3};  // Rounds 2, 3, 4 all use 3 votes.
  Result<MaxFindResult> result =
      VenetisLadderMax(instance->AllElements(), &oracle, options);
  ASSERT_TRUE(result.ok());
  // 8x1 + 4x3 + 2x3 + 1x3 = 29 votes.
  EXPECT_EQ(result->paid_comparisons, 29);
}

TEST(VenetisTest, ScheduleValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  VenetisOptions even_entry;
  even_entry.votes_schedule = {1, 2};
  EXPECT_FALSE(VenetisLadderMax({0, 1}, &oracle, even_entry).ok());
  VenetisOptions zero_entry;
  zero_entry.votes_schedule = {0};
  EXPECT_FALSE(VenetisLadderMax({0, 1}, &oracle, zero_entry).ok());
}

TEST(MajorityErrorTest, KnownValues) {
  EXPECT_DOUBLE_EQ(MajorityErrorProbability(1, 0.3), 0.3);
  // k=3: p^3 + 3 p^2 (1-p) = 0.027 + 3*0.09*0.7 = 0.216.
  EXPECT_NEAR(MajorityErrorProbability(3, 0.3), 0.216, 1e-12);
  EXPECT_DOUBLE_EQ(MajorityErrorProbability(5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(MajorityErrorProbability(5, 1.0), 1.0);
  // Fair coin: majority error is exactly 1/2 for odd k.
  EXPECT_NEAR(MajorityErrorProbability(21, 0.5), 0.5, 1e-12);
}

TEST(MajorityErrorTest, MonotoneInKForSubHalfError) {
  double prev = MajorityErrorProbability(1, 0.25);
  for (int64_t k = 3; k <= 41; k += 2) {
    const double err = MajorityErrorProbability(k, 0.25);
    EXPECT_LT(err, prev) << "k=" << k;
    prev = err;
  }
}

TEST(VenetisTuningTest, Validation) {
  EXPECT_FALSE(TuneVenetisSchedule(1, 100, 0.2).ok());
  EXPECT_FALSE(TuneVenetisSchedule(16, 10, 0.2).ok());   // budget < n-1.
  EXPECT_FALSE(TuneVenetisSchedule(16, 100, 0.5).ok());  // p >= 0.5.
}

TEST(VenetisTuningTest, RespectsBudgetAndOddness) {
  Result<VenetisTuning> tuning = TuneVenetisSchedule(64, 300, 0.2);
  ASSERT_TRUE(tuning.ok());
  EXPECT_LE(tuning->total_votes, 300);
  EXPECT_GE(tuning->total_votes, 63);
  for (int64_t votes : tuning->schedule) {
    EXPECT_GE(votes, 1);
    EXPECT_EQ(votes % 2, 1);
  }
}

TEST(VenetisTuningTest, MoreBudgetNeverHurtsPredictedSurvival) {
  double prev = 0.0;
  for (int64_t budget : {63, 150, 400, 1000, 4000}) {
    Result<VenetisTuning> tuning = TuneVenetisSchedule(64, budget, 0.25);
    ASSERT_TRUE(tuning.ok());
    EXPECT_GE(tuning->predicted_max_survival, prev - 1e-12);
    prev = tuning->predicted_max_survival;
  }
  EXPECT_GT(prev, 0.8);  // Large budgets drive survival high.
}

TEST(VenetisTuningTest, TunedScheduleBeatsUniformAtSameBudget) {
  // Under a constant per-vote error, the tuned schedule must achieve at
  // least the predicted survival of uniform replication with the same
  // spend. Compare measured hit rates over many ladders.
  constexpr int64_t kN = 32;
  constexpr double kError = 0.25;
  // Uniform: 3 votes everywhere = 3 * 31 = 93 votes.
  Result<VenetisTuning> tuning = TuneVenetisSchedule(kN, 93, kError);
  ASSERT_TRUE(tuning.ok());

  int uniform_hits = 0;
  int tuned_hits = 0;
  constexpr int kTrials = 600;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(kN, /*seed=*/4000 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    // Constant per-vote error: threshold model with delta=0, eps=kError.
    ThresholdComparator worker_a(&*instance, ThresholdModel{0.0, kError},
                                 /*seed=*/5000 + static_cast<uint64_t>(t));
    ThresholdComparator worker_b(&*instance, ThresholdModel{0.0, kError},
                                 /*seed=*/6000 + static_cast<uint64_t>(t));
    VenetisOptions uniform;
    uniform.votes_per_match = 3;
    VenetisOptions tuned;
    tuned.votes_schedule = tuning->schedule;
    Result<MaxFindResult> u =
        VenetisLadderMax(instance->AllElements(), &worker_a, uniform);
    Result<MaxFindResult> v =
        VenetisLadderMax(instance->AllElements(), &worker_b, tuned);
    ASSERT_TRUE(u.ok() && v.ok());
    if (u->best == instance->MaxElement()) ++uniform_hits;
    if (v->best == instance->MaxElement()) ++tuned_hits;
  }
  // The greedy allocation shifts votes to late rounds (few matches, high
  // leverage); it must not lose to uniform, and typically wins clearly.
  EXPECT_GE(tuned_hits, uniform_hits - 15);
  EXPECT_GT(tuned_hits, kTrials / 2);
}

TEST(VenetisTest, ReplicationCannotBeatTheThresholdModel) {
  // The paper's motivation: under the threshold model, even large
  // replication leaves near-max elements unresolvable. Count how often the
  // ladder picks the exact maximum when several elements are within delta.
  int replicated_correct = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(32, /*seed=*/800 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(8);
    ThresholdComparator worker(&*instance, ThresholdModel{delta, 0.0},
                               /*seed=*/900 + static_cast<uint64_t>(t));
    VenetisOptions replicated;
    replicated.votes_per_match = 21;
    Result<MaxFindResult> result =
        VenetisLadderMax(instance->AllElements(), &worker, replicated);
    ASSERT_TRUE(result.ok());
    if (result->best == instance->MaxElement()) ++replicated_correct;
  }
  // With ~8 indistinguishable elements, the exact max survives the ladder
  // only a minority of the time, replication notwithstanding.
  EXPECT_LT(replicated_correct, kTrials * 3 / 4);
}

// --------------------------------------------------------------- Adaptive.

TEST(AdaptiveMaxTest, Validation) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  AdaptiveMaxOptions options;
  options.budget = 1;  // < n - 1.
  EXPECT_FALSE(
      AdaptiveEloMax(instance.AllElements(), &oracle, options).ok());
  options.budget = 10;
  options.k_factor = 0.0;
  EXPECT_FALSE(
      AdaptiveEloMax(instance.AllElements(), &oracle, options).ok());
  options.k_factor = 24.0;
  options.exploration = -1.0;
  EXPECT_FALSE(
      AdaptiveEloMax(instance.AllElements(), &oracle, options).ok());
  options.exploration = 100.0;
  EXPECT_FALSE(AdaptiveEloMax({}, &oracle, options).ok());
  EXPECT_FALSE(AdaptiveEloMax({0, 0}, &oracle, options).ok());
}

TEST(AdaptiveMaxTest, SingletonShortCircuit) {
  Instance instance({5.0});
  OracleComparator oracle(&instance);
  AdaptiveMaxOptions options;
  options.budget = 0;
  Result<MaxFindResult> result = AdaptiveEloMax({0}, &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, 0);
  EXPECT_EQ(result->paid_comparisons, 0);
}

TEST(AdaptiveMaxTest, SpendsExactlyTheBudget) {
  Result<Instance> instance = UniformInstance(40, /*seed=*/20);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  AdaptiveMaxOptions options;
  options.budget = 157;
  Result<MaxFindResult> result =
      AdaptiveEloMax(instance->AllElements(), &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->paid_comparisons, 157);
}

TEST(AdaptiveMaxTest, FindsTheMaxWithOracleAndModestBudget) {
  int hits = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(50, /*seed=*/7000 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    AdaptiveMaxOptions options;
    options.budget = 5 * 50;
    options.seed = 7100 + static_cast<uint64_t>(t);
    Result<MaxFindResult> result =
        AdaptiveEloMax(instance->AllElements(), &oracle, options);
    ASSERT_TRUE(result.ok());
    if (result->best == instance->MaxElement()) ++hits;
  }
  EXPECT_GE(hits, kTrials - 1);
}

TEST(AdaptiveMaxTest, FocusedBudgetBeatsLadderUnderProbabilisticModel) {
  // At an equal budget under independent noise, adaptive querying should
  // beat the one-shot ladder (which spends votes on hopeless matches).
  int adaptive_hits = 0;
  int ladder_hits = 0;
  constexpr int kTrials = 60;
  constexpr int64_t kN = 32;
  constexpr int64_t kBudget = 3 * (kN - 1);
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(kN, /*seed=*/7500 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    ThresholdComparator worker_a(&*instance, ThresholdModel{0.0, 0.25},
                                 /*seed=*/7600 + static_cast<uint64_t>(t));
    ThresholdComparator worker_b(&*instance, ThresholdModel{0.0, 0.25},
                                 /*seed=*/7700 + static_cast<uint64_t>(t));

    AdaptiveMaxOptions adaptive;
    adaptive.budget = kBudget;
    adaptive.seed = 7800 + static_cast<uint64_t>(t);
    Result<MaxFindResult> a =
        AdaptiveEloMax(instance->AllElements(), &worker_a, adaptive);
    VenetisOptions ladder;
    ladder.votes_per_match = 3;
    Result<MaxFindResult> v =
        VenetisLadderMax(instance->AllElements(), &worker_b, ladder);
    ASSERT_TRUE(a.ok() && v.ok());
    if (a->best == instance->MaxElement()) ++adaptive_hits;
    if (v->best == instance->MaxElement()) ++ladder_hits;
  }
  EXPECT_GE(adaptive_hits, ladder_hits - 6);
  EXPECT_GT(adaptive_hits, kTrials / 3);
}

TEST(AdaptiveMaxTest, ThresholdModelDefeatsAdaptivityToo) {
  // The paper's thesis cuts against every naive-only scheme, adaptive or
  // not: with ~8 indistinguishable contenders, the exact max is found only
  // a minority of the time regardless of budget.
  int hits = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(32, /*seed=*/8000 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(8);
    ThresholdComparator worker(&*instance, ThresholdModel{delta, 0.0},
                               /*seed=*/8100 + static_cast<uint64_t>(t));
    AdaptiveMaxOptions options;
    options.budget = 20 * 32;  // A generous budget changes nothing.
    options.seed = 8200 + static_cast<uint64_t>(t);
    Result<MaxFindResult> result =
        AdaptiveEloMax(instance->AllElements(), &worker, options);
    ASSERT_TRUE(result.ok());
    if (result->best == instance->MaxElement()) ++hits;
  }
  EXPECT_LT(hits, kTrials * 3 / 4);
}

}  // namespace
}  // namespace crowdmax
