// Tests for the model-backed worker comparators: the threshold model, the
// probabilistic (DOTS) model and the persistent-bias (CARS) model —
// including the paper's key qualitative claim that majority voting helps in
// the former regime and plateaus in the latter.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

// Majority vote of `k` fresh queries on (a, b); returns the winner.
ElementId MajorityOf(Comparator* cmp, ElementId a, ElementId b, int k) {
  int wins_a = 0;
  for (int i = 0; i < k; ++i) {
    if (cmp->Compare(a, b) == a) ++wins_a;
  }
  return 2 * wins_a > k ? a : b;
}

// Fraction of `trials` majority-of-k votes that pick `expected`.
double MajorityAccuracy(Comparator* cmp, ElementId a, ElementId b,
                        ElementId expected, int k, int trials) {
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    if (MajorityOf(cmp, a, b, k) == expected) ++correct;
  }
  return static_cast<double>(correct) / trials;
}

// ------------------------------------------------------ ThresholdModel.

TEST(ThresholdModelTest, Validity) {
  EXPECT_TRUE((ThresholdModel{0.0, 0.0}).Valid());
  EXPECT_TRUE((ThresholdModel{1.0, 0.49}).Valid());
  EXPECT_FALSE((ThresholdModel{-1.0, 0.0}).Valid());
  EXPECT_FALSE((ThresholdModel{1.0, 1.0}).Valid());
  EXPECT_FALSE((ThresholdModel{1.0, -0.1}).Valid());
}

TEST(ThresholdComparatorTest, ExactAboveThresholdWithZeroEpsilon) {
  Instance instance({0.0, 2.0});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cmp.Compare(0, 1), 1);
    EXPECT_EQ(cmp.Compare(1, 0), 1);
  }
}

TEST(ThresholdComparatorTest, EpsilonErrorRateAboveThreshold) {
  Instance instance({0.0, 2.0});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.2}, /*seed=*/2);
  int errors = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / kTrials, 0.2, 0.02);
}

TEST(ThresholdComparatorTest, FreshCoinBelowThresholdIsFair) {
  Instance instance({0.0, 0.5});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/3);
  int wins_high = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++wins_high;
  }
  EXPECT_NEAR(static_cast<double>(wins_high) / kTrials, 0.5, 0.02);
}

TEST(ThresholdComparatorTest, BiasedCoinBelowThreshold) {
  Instance instance({0.0, 0.5});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kFreshCoin;
  options.below_threshold_correct_prob = 0.8;
  ThresholdComparator cmp(&instance, options, /*seed=*/4);
  int correct = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++correct;  // 1 is the true winner.
  }
  EXPECT_NEAR(static_cast<double>(correct) / kTrials, 0.8, 0.02);
}

TEST(ThresholdComparatorTest, PersistentArbitraryIsConsistentPerPair) {
  Instance instance({0.0, 0.1, 0.2, 0.3});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  ThresholdComparator cmp(&instance, options, /*seed=*/5);
  for (ElementId a = 0; a < 4; ++a) {
    for (ElementId b = a + 1; b < 4; ++b) {
      const ElementId first = cmp.Compare(a, b);
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(cmp.Compare(a, b), first);
        EXPECT_EQ(cmp.Compare(b, a), first);
      }
    }
  }
}

TEST(ThresholdComparatorTest, PersistentArbitraryIsArbitraryAcrossPairs) {
  // With many indistinguishable pairs, some persistent answers must be
  // wrong (probability 2^-20 otherwise).
  std::vector<double> values;
  for (int i = 0; i <= 20; ++i) values.push_back(static_cast<double>(i) * 0.01);
  Instance packed(values);
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  ThresholdComparator cmp(&packed, options, /*seed=*/6);
  int wrong = 0;
  for (ElementId a = 0; a < 20; ++a) {
    if (cmp.Compare(a, 20) == a) ++wrong;  // 20 holds the max value.
  }
  EXPECT_GT(wrong, 0);
}

TEST(ThresholdComparatorTest, ZeroDeltaIsProbabilisticModel) {
  // delta == 0: every distinct pair is above threshold.
  Instance instance({0.0, 1e-9});
  ThresholdComparator cmp(&instance, ThresholdModel{0.0, 0.0}, /*seed=*/7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(cmp.Compare(0, 1), 1);
}

TEST(ThresholdComparatorTest, MajorityVotingCannotBeatTheThreshold) {
  // The paper's central point: for indistinguishable pairs under a fair
  // coin, majority accuracy stays ~0.5 regardless of the number of votes.
  Instance instance({0.0, 0.5});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/8);
  const double acc21 = MajorityAccuracy(&cmp, 0, 1, /*expected=*/1,
                                        /*k=*/21, /*trials=*/2000);
  EXPECT_NEAR(acc21, 0.5, 0.05);
}

// ------------------------------------------------ RelativeErrorComparator.

TEST(RelativeErrorComparatorTest, ErrorDecaysWithDifference) {
  Instance instance({100.0, 95.0, 50.0});
  RelativeErrorComparator::Options options;  // Defaults: 0.5 * e^{-4.5 r}.
  RelativeErrorComparator cmp(&instance, options, /*seed=*/9);

  constexpr int kTrials = 20000;
  int errors_close = 0;
  int errors_far = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++errors_close;  // rel diff 0.05.
    if (cmp.Compare(0, 2) == 2) ++errors_far;    // rel diff 0.5.
  }
  const double p_close = static_cast<double>(errors_close) / kTrials;
  const double p_far = static_cast<double>(errors_far) / kTrials;
  EXPECT_NEAR(p_close, 0.5 * std::exp(-4.5 * 0.05), 0.02);
  EXPECT_NEAR(p_far, 0.5 * std::exp(-4.5 * 0.5), 0.01);
  EXPECT_LT(p_far, p_close);
}

TEST(RelativeErrorComparatorTest, MajorityVotingConvergesToTruth) {
  // The DOTS regime (Figure 2(a)): more workers, higher accuracy.
  Instance instance({100.0, 93.0});  // rel diff 0.07, hard but not a coin.
  RelativeErrorComparator::Options options;
  RelativeErrorComparator cmp(&instance, options, /*seed=*/10);
  const double acc1 = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/1, 2000);
  const double acc21 = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/21, 2000);
  EXPECT_GT(acc21, acc1 + 0.15);
  EXPECT_GT(acc21, 0.85);
}

TEST(RelativeErrorComparatorTest, EqualValuesAreACoin) {
  Instance instance({1.0, 1.0});
  RelativeErrorComparator::Options options;
  RelativeErrorComparator cmp(&instance, options, /*seed=*/11);
  int wins0 = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++wins0;
  }
  EXPECT_NEAR(static_cast<double>(wins0) / kTrials, 0.5, 0.03);
}

// ---------------------------------------------- PersistentBiasComparator.

PersistentBiasComparator::Options CarsLikeOptions() {
  PersistentBiasComparator::Options options;
  options.buckets = {{0.10, 0.60}, {0.20, 0.70}};
  options.individual_noise = 0.28;
  options.above_threshold_error = 0.15;
  return options;
}

TEST(PersistentBiasComparatorTest, EasyPairsConvergeWithMajority) {
  Instance instance({100.0, 50.0});  // rel diff 0.5 — above all buckets.
  PersistentBiasComparator cmp(&instance, CarsLikeOptions(), /*seed=*/12);
  const double acc = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/15, 1000);
  EXPECT_GT(acc, 0.95);
}

TEST(PersistentBiasComparatorTest, HardPairsPlateauAtPreferenceAccuracy) {
  // The CARS regime (Figure 2(b)): averaged over many instances, majority
  // accuracy converges to the bucket's preferred_correct_prob (0.6 here),
  // no matter how many workers vote.
  int correct = 0;
  constexpr int kInstances = 1500;
  for (int t = 0; t < kInstances; ++t) {
    Instance instance({100.0, 95.0});  // rel diff 0.05 — first bucket.
    PersistentBiasComparator cmp(&instance, CarsLikeOptions(),
                                 /*seed=*/5000 + static_cast<uint64_t>(t));
    if (MajorityOf(&cmp, 0, 1, /*k=*/21) == 0) ++correct;
  }
  const double acc = static_cast<double>(correct) / kInstances;
  EXPECT_NEAR(acc, 0.60, 0.05);
}

TEST(PersistentBiasComparatorTest, SecondBucketPlateausHigher) {
  int correct = 0;
  constexpr int kInstances = 1500;
  for (int t = 0; t < kInstances; ++t) {
    Instance instance({100.0, 85.0});  // rel diff 0.15 — second bucket.
    PersistentBiasComparator cmp(&instance, CarsLikeOptions(),
                                 /*seed=*/9000 + static_cast<uint64_t>(t));
    if (MajorityOf(&cmp, 0, 1, /*k=*/21) == 0) ++correct;
  }
  const double acc = static_cast<double>(correct) / kInstances;
  EXPECT_NEAR(acc, 0.70, 0.05);
}

TEST(PersistentBiasComparatorTest, PreferenceIsStableWithinOneInstance) {
  Instance instance({100.0, 95.0});
  PersistentBiasComparator cmp(&instance, CarsLikeOptions(), /*seed=*/13);
  // With 28% individual noise, the majority of very many votes reveals the
  // persistent preference; two independent majorities must agree.
  const ElementId m1 = MajorityOf(&cmp, 0, 1, 201);
  const ElementId m2 = MajorityOf(&cmp, 0, 1, 201);
  EXPECT_EQ(m1, m2);
}

// ---------------------------------------------- DistanceDecayComparator.

TEST(DistanceDecayComparatorTest, BelowThresholdIsACoin) {
  Instance instance({0.0, 0.5});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/41);
  int wins_high = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++wins_high;
  }
  EXPECT_NEAR(static_cast<double>(wins_high) / kTrials, 0.5, 0.02);
}

TEST(DistanceDecayComparatorTest, ErrorDecaysAboveThreshold) {
  // Distances 1.2 and 3.0 with delta = 1: errors eps*e^{-5*0.2} vs
  // eps*e^{-5*2} — the far pair is essentially always right.
  Instance instance({0.0, 1.2, 3.0});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  options.epsilon_at_threshold = 0.3;
  options.decay = 5.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/42);

  int errors_near = 0;
  int errors_far = 0;
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors_near;
    if (cmp.Compare(0, 2) == 0) ++errors_far;
  }
  const double p_near = static_cast<double>(errors_near) / kTrials;
  const double p_far = static_cast<double>(errors_far) / kTrials;
  EXPECT_NEAR(p_near, 0.3 * std::exp(-5.0 * 0.2), 0.01);
  EXPECT_LT(p_far, 0.002);
}

TEST(DistanceDecayComparatorTest, ZeroDecayIsPlainThresholdModel) {
  Instance instance({0.0, 2.0});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  options.epsilon_at_threshold = 0.2;
  options.decay = 0.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/43);
  int errors = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / kTrials, 0.2, 0.02);
}

TEST(DistanceDecayComparatorTest, FilterGuaranteeSurvivesMildDecayNoise) {
  // Algorithm 2's guarantee is probabilistic once epsilon > 0; with fast
  // decay the effective above-threshold error is tiny and the maximum
  // should survive essentially always.
  int survived = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(400, /*seed=*/600 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(8);
    DistanceDecayComparator::Options options;
    options.delta = delta;
    options.epsilon_at_threshold = 0.25;
    options.decay = 30.0 / delta;  // Error halves every ~0.023*delta.
    DistanceDecayComparator cmp(&*instance, options,
                                /*seed=*/700 + static_cast<uint64_t>(t));
    FilterOptions filter;
    filter.u_n = instance->CountWithin(delta);
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), filter, &cmp);
    ASSERT_TRUE(result.ok());
    for (ElementId e : result->candidates) {
      if (e == instance->MaxElement()) {
        ++survived;
        break;
      }
    }
  }
  EXPECT_GE(survived, kTrials - 2);
}

// Property sweep: no comparator may ever return an element outside {a, b}.
class WorkerModelContractTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkerModelContractTest, AnswersAreAlwaysOneOfTheArguments) {
  const uint64_t seed = GetParam();
  std::vector<double> values;
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) values.push_back(rng.NextDouble());
  Instance instance(values);

  ThresholdComparator threshold(&instance, ThresholdModel{0.3, 0.1}, seed);
  RelativeErrorComparator relative(&instance, {}, seed + 1);
  PersistentBiasComparator bias(&instance, CarsLikeOptions(), seed + 2);

  for (ElementId a = 0; a < instance.size(); ++a) {
    for (ElementId b = 0; b < instance.size(); ++b) {
      if (a == b) continue;
      for (Comparator* cmp :
           {static_cast<Comparator*>(&threshold),
            static_cast<Comparator*>(&relative),
            static_cast<Comparator*>(&bias)}) {
        const ElementId winner = cmp->Compare(a, b);
        EXPECT_TRUE(winner == a || winner == b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkerModelContractTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace crowdmax
