// Tests for the model-backed worker comparators: the threshold model, the
// probabilistic (DOTS) model and the persistent-bias (CARS) model —
// including the paper's key qualitative claim that majority voting helps in
// the former regime and plateaus in the latter.

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/pair_key.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

// Majority vote of `k` fresh queries on (a, b); returns the winner.
ElementId MajorityOf(Comparator* cmp, ElementId a, ElementId b, int k) {
  int wins_a = 0;
  for (int i = 0; i < k; ++i) {
    if (cmp->Compare(a, b) == a) ++wins_a;
  }
  return 2 * wins_a > k ? a : b;
}

// Fraction of `trials` majority-of-k votes that pick `expected`.
double MajorityAccuracy(Comparator* cmp, ElementId a, ElementId b,
                        ElementId expected, int k, int trials) {
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    if (MajorityOf(cmp, a, b, k) == expected) ++correct;
  }
  return static_cast<double>(correct) / trials;
}

// ------------------------------------------------------ ThresholdModel.

TEST(ThresholdModelTest, Validity) {
  EXPECT_TRUE((ThresholdModel{0.0, 0.0}).Valid());
  EXPECT_TRUE((ThresholdModel{1.0, 0.49}).Valid());
  EXPECT_FALSE((ThresholdModel{-1.0, 0.0}).Valid());
  EXPECT_FALSE((ThresholdModel{1.0, 1.0}).Valid());
  EXPECT_FALSE((ThresholdModel{1.0, -0.1}).Valid());
}

TEST(ThresholdComparatorTest, ExactAboveThresholdWithZeroEpsilon) {
  Instance instance({0.0, 2.0});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cmp.Compare(0, 1), 1);
    EXPECT_EQ(cmp.Compare(1, 0), 1);
  }
}

TEST(ThresholdComparatorTest, EpsilonErrorRateAboveThreshold) {
  Instance instance({0.0, 2.0});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.2}, /*seed=*/2);
  int errors = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / kTrials, 0.2, 0.02);
}

TEST(ThresholdComparatorTest, FreshCoinBelowThresholdIsFair) {
  Instance instance({0.0, 0.5});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/3);
  int wins_high = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++wins_high;
  }
  EXPECT_NEAR(static_cast<double>(wins_high) / kTrials, 0.5, 0.02);
}

TEST(ThresholdComparatorTest, BiasedCoinBelowThreshold) {
  Instance instance({0.0, 0.5});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kFreshCoin;
  options.below_threshold_correct_prob = 0.8;
  ThresholdComparator cmp(&instance, options, /*seed=*/4);
  int correct = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++correct;  // 1 is the true winner.
  }
  EXPECT_NEAR(static_cast<double>(correct) / kTrials, 0.8, 0.02);
}

TEST(ThresholdComparatorTest, PersistentArbitraryIsConsistentPerPair) {
  Instance instance({0.0, 0.1, 0.2, 0.3});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  ThresholdComparator cmp(&instance, options, /*seed=*/5);
  for (ElementId a = 0; a < 4; ++a) {
    for (ElementId b = a + 1; b < 4; ++b) {
      const ElementId first = cmp.Compare(a, b);
      for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(cmp.Compare(a, b), first);
        EXPECT_EQ(cmp.Compare(b, a), first);
      }
    }
  }
}

TEST(ThresholdComparatorTest, PersistentArbitraryIsArbitraryAcrossPairs) {
  // With many indistinguishable pairs, some persistent answers must be
  // wrong (probability 2^-20 otherwise).
  std::vector<double> values;
  for (int i = 0; i <= 20; ++i) values.push_back(static_cast<double>(i) * 0.01);
  Instance packed(values);
  ThresholdComparator::Options options;
  options.model = ThresholdModel{1.0, 0.0};
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  ThresholdComparator cmp(&packed, options, /*seed=*/6);
  int wrong = 0;
  for (ElementId a = 0; a < 20; ++a) {
    if (cmp.Compare(a, 20) == a) ++wrong;  // 20 holds the max value.
  }
  EXPECT_GT(wrong, 0);
}

TEST(ThresholdComparatorTest, ZeroDeltaIsProbabilisticModel) {
  // delta == 0: every distinct pair is above threshold.
  Instance instance({0.0, 1e-9});
  ThresholdComparator cmp(&instance, ThresholdModel{0.0, 0.0}, /*seed=*/7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(cmp.Compare(0, 1), 1);
}

TEST(ThresholdComparatorTest, MajorityVotingCannotBeatTheThreshold) {
  // The paper's central point: for indistinguishable pairs under a fair
  // coin, majority accuracy stays ~0.5 regardless of the number of votes.
  Instance instance({0.0, 0.5});
  ThresholdComparator cmp(&instance, ThresholdModel{1.0, 0.0}, /*seed=*/8);
  const double acc21 = MajorityAccuracy(&cmp, 0, 1, /*expected=*/1,
                                        /*k=*/21, /*trials=*/2000);
  EXPECT_NEAR(acc21, 0.5, 0.05);
}

// ------------------------------------------------ RelativeErrorComparator.

TEST(RelativeErrorComparatorTest, ErrorDecaysWithDifference) {
  Instance instance({100.0, 95.0, 50.0});
  RelativeErrorComparator::Options options;  // Defaults: 0.5 * e^{-4.5 r}.
  RelativeErrorComparator cmp(&instance, options, /*seed=*/9);

  constexpr int kTrials = 20000;
  int errors_close = 0;
  int errors_far = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++errors_close;  // rel diff 0.05.
    if (cmp.Compare(0, 2) == 2) ++errors_far;    // rel diff 0.5.
  }
  const double p_close = static_cast<double>(errors_close) / kTrials;
  const double p_far = static_cast<double>(errors_far) / kTrials;
  EXPECT_NEAR(p_close, 0.5 * std::exp(-4.5 * 0.05), 0.02);
  EXPECT_NEAR(p_far, 0.5 * std::exp(-4.5 * 0.5), 0.01);
  EXPECT_LT(p_far, p_close);
}

TEST(RelativeErrorComparatorTest, MajorityVotingConvergesToTruth) {
  // The DOTS regime (Figure 2(a)): more workers, higher accuracy.
  Instance instance({100.0, 93.0});  // rel diff 0.07, hard but not a coin.
  RelativeErrorComparator::Options options;
  RelativeErrorComparator cmp(&instance, options, /*seed=*/10);
  const double acc1 = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/1, 2000);
  const double acc21 = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/21, 2000);
  EXPECT_GT(acc21, acc1 + 0.15);
  EXPECT_GT(acc21, 0.85);
}

TEST(RelativeErrorComparatorTest, EqualValuesAreACoin) {
  Instance instance({1.0, 1.0});
  RelativeErrorComparator::Options options;
  RelativeErrorComparator cmp(&instance, options, /*seed=*/11);
  int wins0 = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++wins0;
  }
  EXPECT_NEAR(static_cast<double>(wins0) / kTrials, 0.5, 0.03);
}

// ---------------------------------------------- PersistentBiasComparator.

PersistentBiasComparator::Options CarsLikeOptions() {
  PersistentBiasComparator::Options options;
  options.buckets = {{0.10, 0.60}, {0.20, 0.70}};
  options.individual_noise = 0.28;
  options.above_threshold_error = 0.15;
  return options;
}

TEST(PersistentBiasComparatorTest, EasyPairsConvergeWithMajority) {
  Instance instance({100.0, 50.0});  // rel diff 0.5 — above all buckets.
  PersistentBiasComparator cmp(&instance, CarsLikeOptions(), /*seed=*/12);
  const double acc = MajorityAccuracy(&cmp, 0, 1, 0, /*k=*/15, 1000);
  EXPECT_GT(acc, 0.95);
}

TEST(PersistentBiasComparatorTest, HardPairsPlateauAtPreferenceAccuracy) {
  // The CARS regime (Figure 2(b)): averaged over many instances, majority
  // accuracy converges to the bucket's preferred_correct_prob (0.6 here),
  // no matter how many workers vote.
  int correct = 0;
  constexpr int kInstances = 1500;
  for (int t = 0; t < kInstances; ++t) {
    Instance instance({100.0, 95.0});  // rel diff 0.05 — first bucket.
    PersistentBiasComparator cmp(&instance, CarsLikeOptions(),
                                 /*seed=*/5000 + static_cast<uint64_t>(t));
    if (MajorityOf(&cmp, 0, 1, /*k=*/21) == 0) ++correct;
  }
  const double acc = static_cast<double>(correct) / kInstances;
  EXPECT_NEAR(acc, 0.60, 0.05);
}

TEST(PersistentBiasComparatorTest, SecondBucketPlateausHigher) {
  int correct = 0;
  constexpr int kInstances = 1500;
  for (int t = 0; t < kInstances; ++t) {
    Instance instance({100.0, 85.0});  // rel diff 0.15 — second bucket.
    PersistentBiasComparator cmp(&instance, CarsLikeOptions(),
                                 /*seed=*/9000 + static_cast<uint64_t>(t));
    if (MajorityOf(&cmp, 0, 1, /*k=*/21) == 0) ++correct;
  }
  const double acc = static_cast<double>(correct) / kInstances;
  EXPECT_NEAR(acc, 0.70, 0.05);
}

TEST(PersistentBiasComparatorTest, PreferenceIsStableWithinOneInstance) {
  Instance instance({100.0, 95.0});
  PersistentBiasComparator cmp(&instance, CarsLikeOptions(), /*seed=*/13);
  // With 28% individual noise, the majority of very many votes reveals the
  // persistent preference; two independent majorities must agree.
  const ElementId m1 = MajorityOf(&cmp, 0, 1, 201);
  const ElementId m2 = MajorityOf(&cmp, 0, 1, 201);
  EXPECT_EQ(m1, m2);
}

// ---------------------------------------------- DistanceDecayComparator.

TEST(DistanceDecayComparatorTest, BelowThresholdIsACoin) {
  Instance instance({0.0, 0.5});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/41);
  int wins_high = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 1) ++wins_high;
  }
  EXPECT_NEAR(static_cast<double>(wins_high) / kTrials, 0.5, 0.02);
}

TEST(DistanceDecayComparatorTest, ErrorDecaysAboveThreshold) {
  // Distances 1.2 and 3.0 with delta = 1: errors eps*e^{-5*0.2} vs
  // eps*e^{-5*2} — the far pair is essentially always right.
  Instance instance({0.0, 1.2, 3.0});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  options.epsilon_at_threshold = 0.3;
  options.decay = 5.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/42);

  int errors_near = 0;
  int errors_far = 0;
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors_near;
    if (cmp.Compare(0, 2) == 0) ++errors_far;
  }
  const double p_near = static_cast<double>(errors_near) / kTrials;
  const double p_far = static_cast<double>(errors_far) / kTrials;
  EXPECT_NEAR(p_near, 0.3 * std::exp(-5.0 * 0.2), 0.01);
  EXPECT_LT(p_far, 0.002);
}

TEST(DistanceDecayComparatorTest, ZeroDecayIsPlainThresholdModel) {
  Instance instance({0.0, 2.0});
  DistanceDecayComparator::Options options;
  options.delta = 1.0;
  options.epsilon_at_threshold = 0.2;
  options.decay = 0.0;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/43);
  int errors = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (cmp.Compare(0, 1) == 0) ++errors;
  }
  EXPECT_NEAR(static_cast<double>(errors) / kTrials, 0.2, 0.02);
}

TEST(DistanceDecayComparatorTest, FilterGuaranteeSurvivesMildDecayNoise) {
  // Algorithm 2's guarantee is probabilistic once epsilon > 0; with fast
  // decay the effective above-threshold error is tiny and the maximum
  // should survive essentially always.
  int survived = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(400, /*seed=*/600 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(8);
    DistanceDecayComparator::Options options;
    options.delta = delta;
    options.epsilon_at_threshold = 0.25;
    options.decay = 30.0 / delta;  // Error halves every ~0.023*delta.
    DistanceDecayComparator cmp(&*instance, options,
                                /*seed=*/700 + static_cast<uint64_t>(t));
    FilterOptions filter;
    filter.u_n = instance->CountWithin(delta);
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), filter, &cmp);
    ASSERT_TRUE(result.ok());
    for (ElementId e : result->candidates) {
      if (e == instance->MaxElement()) {
        ++survived;
        break;
      }
    }
  }
  EXPECT_GE(survived, kTrials - 2);
}

// ----------------------------------------------- Batch vote equivalence.
//
// The batch path (VoteBatchComparator::GenerateVotes, DESIGN.md §14) must
// be bit-identical to the per-call path: same outcomes, same comparison
// counter, and the same serialized state — which covers the RNG stream
// position and the sticky per-pair tables byte for byte.

std::string StateBytes(const Comparator& cmp) {
  CheckpointWriter writer;
  const Status status = cmp.SaveState(&writer);
  EXPECT_TRUE(status.ok()) << status.message();
  return writer.Take();
}

// A deterministic mix of easy, hard and repeated pairs in both argument
// orders, so the batch exercises every regime and the sticky tables.
std::vector<ComparisonPair> MixedPairs(const Instance& instance,
                                       uint64_t seed, size_t count) {
  Rng rng(seed);
  const uint64_t n = static_cast<uint64_t>(instance.size());
  std::vector<ComparisonPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ElementId a = static_cast<ElementId>(rng.NextBounded(n));
    ElementId b = static_cast<ElementId>(rng.NextBounded(n));
    if (a == b) b = static_cast<ElementId>((a + 1) % instance.size());
    if (i % 5 == 0 && !pairs.empty()) {
      // Revisit an earlier pair, swapped: sticky answers must be stable
      // under argument order inside one batch.
      const ComparisonPair& back = pairs[rng.NextBounded(pairs.size())];
      pairs.emplace_back(back.second, back.first);
    } else {
      pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

// Two identically seeded copies of every model, one driven per-call and
// one through GenerateVotes.
struct ModelDuo {
  std::unique_ptr<Comparator> percall;
  std::unique_ptr<Comparator> batch;
  const char* name;
};

std::vector<ModelDuo> MakeModelDuos(const Instance& instance, uint64_t seed) {
  std::vector<ModelDuo> duos;
  auto add = [&duos](auto make, const char* name) {
    duos.push_back({make(), make(), name});
  };
  ThresholdComparator::Options sticky;
  sticky.model = ThresholdModel{0.3, 0.2};
  sticky.tie_policy = TiePolicy::kPersistentArbitrary;
  add([&] { return std::make_unique<ThresholdComparator>(&instance, sticky,
                                                         seed); },
      "threshold/persistent");
  ThresholdComparator::Options coin;
  coin.model = ThresholdModel{0.3, 0.0};  // epsilon == 0: gated draws.
  coin.below_threshold_correct_prob = 0.8;
  add([&] { return std::make_unique<ThresholdComparator>(&instance, coin,
                                                         seed + 1); },
      "threshold/coin");
  add([&] { return std::make_unique<RelativeErrorComparator>(
          &instance, RelativeErrorComparator::Options{}, seed + 2); },
      "relative_error");
  DistanceDecayComparator::Options decay;
  decay.delta = 0.3;
  decay.epsilon_at_threshold = 0.25;
  decay.decay = 3.0;
  add([&] { return std::make_unique<DistanceDecayComparator>(&instance, decay,
                                                             seed + 3); },
      "distance_decay");
  add([&] { return std::make_unique<PersistentBiasComparator>(
          &instance, CarsLikeOptions(), seed + 4); },
      "persistent_bias");
  return duos;
}

void ExpectBatchMatchesPerCall(const ModelDuo& duo,
                               std::span<const ComparisonPair> pairs) {
  std::vector<ElementId> expected;
  expected.reserve(pairs.size());
  for (const ComparisonPair& p : pairs) {
    expected.push_back(duo.percall->Compare(p.first, p.second));
  }
  VoteBatchComparator* vb = duo.batch->AsVoteBatch();
  ASSERT_NE(vb, nullptr) << duo.name;
  std::vector<ElementId> got(pairs.size());
  ASSERT_EQ(vb->GenerateVotes(pairs, got),
            static_cast<int64_t>(pairs.size()))
      << duo.name;
  EXPECT_EQ(got, expected) << duo.name;
  EXPECT_EQ(duo.batch->num_comparisons(), duo.percall->num_comparisons())
      << duo.name;
  EXPECT_EQ(StateBytes(*duo.batch), StateBytes(*duo.percall)) << duo.name;
}

TEST(VoteBatchEquivalenceTest, BatchMatchesPerCallBitIdentically) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Rng value_rng(seed);
    std::vector<double> values;
    for (int i = 0; i < 24; ++i) values.push_back(value_rng.NextDouble());
    Instance instance(values);
    for (ModelDuo& duo : MakeModelDuos(instance, 100 + seed)) {
      const std::vector<ComparisonPair> pairs =
          MixedPairs(instance, seed, 400);
      ExpectBatchMatchesPerCall(duo, pairs);
      // Continuity: per-call comparisons after the batch stay in lockstep,
      // so the batch left the RNG exactly where per-call execution did.
      for (size_t i = 0; i < 32; ++i) {
        const ComparisonPair& p = pairs[i * 7 % pairs.size()];
        EXPECT_EQ(duo.batch->Compare(p.first, p.second),
                  duo.percall->Compare(p.first, p.second))
            << duo.name;
      }
      EXPECT_EQ(StateBytes(*duo.batch), StateBytes(*duo.percall)) << duo.name;
    }
  }
}

TEST(VoteBatchEquivalenceTest, CheckpointRoundTripBetweenBatches) {
  Rng value_rng(31);
  std::vector<double> values;
  for (int i = 0; i < 16; ++i) values.push_back(value_rng.NextDouble());
  Instance instance(values);
  for (ModelDuo& duo : MakeModelDuos(instance, 300)) {
    const std::vector<ComparisonPair> warmup = MixedPairs(instance, 32, 150);
    const std::vector<ComparisonPair> after = MixedPairs(instance, 33, 150);
    VoteBatchComparator* vb = duo.batch->AsVoteBatch();
    std::vector<ElementId> out(warmup.size());
    ASSERT_EQ(vb->GenerateVotes(warmup, out),
              static_cast<int64_t>(warmup.size()));

    // Restore the checkpoint into the identically-constructed twin and run
    // the next batch on both: same votes, same final state.
    Result<CheckpointReader> reader = CheckpointReader::Open(
        StateBytes(*duo.batch));
    ASSERT_TRUE(reader.ok()) << duo.name;
    ASSERT_TRUE(duo.percall->LoadState(&*reader).ok()) << duo.name;

    std::vector<ElementId> got(after.size());
    ASSERT_EQ(vb->GenerateVotes(after, got),
              static_cast<int64_t>(after.size()));
    std::vector<ElementId> twin(after.size());
    ASSERT_EQ(duo.percall->AsVoteBatch()->GenerateVotes(after, twin),
              static_cast<int64_t>(after.size()));
    EXPECT_EQ(got, twin) << duo.name;
    EXPECT_EQ(StateBytes(*duo.batch), StateBytes(*duo.percall)) << duo.name;
  }
}

// The bulk-draw knob (DESIGN.md §16) must be behaviour-free: the bulk
// integer-threshold kernels and the legacy scalar float-compare loop give
// the same votes, the same counters, and byte-identical serialized state
// (RNG position and sticky tables) — for every model, including the
// sticky two-pass walks.
TEST(VoteBatchEquivalenceTest, BulkAndScalarDrawPathsAreBitIdentical) {
  for (uint64_t seed : {51u, 52u}) {
    Rng value_rng(seed);
    std::vector<double> values;
    for (int i = 0; i < 24; ++i) values.push_back(value_rng.NextDouble());
    Instance instance(values);
    // Reuse the duo scaffolding: `percall` runs the scalar path, `batch`
    // the bulk path, over identical pair streams.
    for (ModelDuo& duo : MakeModelDuos(instance, 700 + seed)) {
      VoteBatchComparator* bulk = duo.batch->AsVoteBatch();
      VoteBatchComparator* scalar = duo.percall->AsVoteBatch();
      ASSERT_NE(bulk, nullptr) << duo.name;
      ASSERT_NE(scalar, nullptr) << duo.name;
      ASSERT_TRUE(bulk->bulk_draws()) << duo.name;  // Bulk is the default.
      scalar->set_bulk_draws(false);
      for (uint64_t batch_seed : {seed, seed + 10}) {
        const std::vector<ComparisonPair> pairs =
            MixedPairs(instance, batch_seed, 600);
        std::vector<ElementId> bulk_votes(pairs.size());
        std::vector<ElementId> scalar_votes(pairs.size());
        ASSERT_EQ(bulk->GenerateVotes(pairs, bulk_votes),
                  static_cast<int64_t>(pairs.size()))
            << duo.name;
        ASSERT_EQ(scalar->GenerateVotes(pairs, scalar_votes),
                  static_cast<int64_t>(pairs.size()))
            << duo.name;
        EXPECT_EQ(bulk_votes, scalar_votes) << duo.name;
        EXPECT_EQ(duo.batch->num_comparisons(), duo.percall->num_comparisons())
            << duo.name;
        EXPECT_EQ(StateBytes(*duo.batch), StateBytes(*duo.percall))
            << duo.name;
      }
    }
  }
}

// Regression for the pair-key aliasing bug: a negative or out-of-range id
// must stop the batch at the longest valid prefix — unanswered and
// uncharged — never silently alias another element's pair key.
TEST(VoteBatchEquivalenceTest, InvalidIdStopsTheBatchUncharged) {
  Rng value_rng(41);
  std::vector<double> values;
  for (int i = 0; i < 8; ++i) values.push_back(value_rng.NextDouble());
  Instance instance(values);
  for (ElementId bad : {static_cast<ElementId>(-1),
                        static_cast<ElementId>(instance.size())}) {
    for (ModelDuo& duo : MakeModelDuos(instance, 500)) {
      const std::vector<ComparisonPair> prefix = {{0, 1}, {2, 3}};
      std::vector<ComparisonPair> pairs = prefix;
      pairs.push_back({bad, 2});
      pairs.push_back({4, 5});  // Valid but after the stop: not answered.
      ExpectBatchMatchesPerCall(duo, std::span<const ComparisonPair>(pairs)
                                         .first(prefix.size()));

      std::vector<ElementId> out(pairs.size(), -7);
      VoteBatchComparator* vb = duo.batch->AsVoteBatch();
      const int64_t before = duo.batch->num_comparisons();
      EXPECT_EQ(vb->GenerateVotes(pairs, out),
                static_cast<int64_t>(prefix.size()))
          << duo.name << " bad=" << bad;
      EXPECT_EQ(duo.batch->num_comparisons(),
                before + static_cast<int64_t>(prefix.size()))
          << duo.name;
      EXPECT_EQ(out[2], -7) << duo.name;  // Untouched past the prefix.
      EXPECT_EQ(out[3], -7) << duo.name;
    }
  }
}

// Unified pair keys (core/pair_key.h): order-insensitive, collision-free
// over valid ids; negative ids are refused by the debug CHECK instead of
// silently aliasing via unsigned wrap-around (the old static_cast bug).
TEST(PairKeyTest, KeysAreOrderInsensitiveAndDistinct) {
  EXPECT_EQ(PackPairKey(2, 3), PackPairKey(3, 2));
  EXPECT_NE(PackPairKey(2, 3), PackPairKey(2, 4));
  EXPECT_NE(PackPairKey(0, 1), PackPairKey(1, 2));
  EXPECT_TRUE(PairKeyable(0, 1));
  EXPECT_FALSE(PairKeyable(-1, 1));
  EXPECT_FALSE(PairKeyable(1, -2147483648));
}

#ifndef NDEBUG
TEST(PairKeyDeathTest, NegativeIdIsRefusedNotAliased) {
  EXPECT_DEATH(PackPairKey(-1, 2), "PairKeyable");
}
#endif

// Property sweep: no comparator may ever return an element outside {a, b}.
class WorkerModelContractTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkerModelContractTest, AnswersAreAlwaysOneOfTheArguments) {
  const uint64_t seed = GetParam();
  std::vector<double> values;
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) values.push_back(rng.NextDouble());
  Instance instance(values);

  ThresholdComparator threshold(&instance, ThresholdModel{0.3, 0.1}, seed);
  RelativeErrorComparator relative(&instance, {}, seed + 1);
  PersistentBiasComparator bias(&instance, CarsLikeOptions(), seed + 2);

  for (ElementId a = 0; a < instance.size(); ++a) {
    for (ElementId b = 0; b < instance.size(); ++b) {
      if (a == b) continue;
      for (Comparator* cmp :
           {static_cast<Comparator*>(&threshold),
            static_cast<Comparator*>(&relative),
            static_cast<Comparator*>(&bias)}) {
        const ElementId winner = cmp->Compare(a, b);
        EXPECT_TRUE(winner == a || winner == b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkerModelContractTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace crowdmax
