// Tests for the phase-2 solvers: AllPlayAllMax, 2-MaxFind (Algorithm 3) and
// the randomized max-finder (Algorithm 5), including their approximation
// guarantees (2*delta / 3*delta) and comparison bounds.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/instance.h"
#include "core/maxfind.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(AllPlayAllMaxTest, ExactWithOracle) {
  Result<Instance> instance = UniformInstance(30, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  Result<MaxFindResult> result =
      AllPlayAllMax(instance->AllElements(), &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
  EXPECT_EQ(result->paid_comparisons, 30 * 29 / 2);
}

TEST(AllPlayAllMaxTest, RejectsEmptyAndDuplicates) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  EXPECT_FALSE(AllPlayAllMax({}, &oracle).ok());
  EXPECT_FALSE(AllPlayAllMax({1, 1}, &oracle).ok());
}

TEST(TwoMaxFindTest, SingletonShortCircuit) {
  Instance instance({3.0});
  OracleComparator oracle(&instance);
  Result<MaxFindResult> result = TwoMaxFind({0}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, 0);
  EXPECT_EQ(result->paid_comparisons, 0);
}

TEST(TwoMaxFindTest, PairIsASingleComparison) {
  Instance instance({3.0, 7.0});
  OracleComparator oracle(&instance);
  Result<MaxFindResult> result = TwoMaxFind({0, 1}, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, 1);
  EXPECT_EQ(result->paid_comparisons, 1);
}

TEST(TwoMaxFindTest, ExactWithOracle) {
  for (int64_t n : {3, 10, 50, 200}) {
    Result<Instance> instance =
        UniformInstance(n, /*seed=*/static_cast<uint64_t>(n));
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    Result<MaxFindResult> result =
        TwoMaxFind(instance->AllElements(), &oracle);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_EQ(result->best, instance->MaxElement()) << "n=" << n;
  }
}

TEST(TwoMaxFindTest, StaysWithinTheoreticalComparisonBound) {
  for (int64_t n : {10, 40, 100, 400}) {
    Result<Instance> instance =
        UniformInstance(n, /*seed=*/static_cast<uint64_t>(7 * n));
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    Result<MaxFindResult> result =
        TwoMaxFind(instance->AllElements(), &oracle);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->paid_comparisons, TwoMaxFindComparisonUpperBound(n))
        << "n=" << n;
  }
}

TEST(TwoMaxFindTest, AdversarialWorstCaseStaysWithinBound) {
  // Packed instance + "pivot always loses": the costliest regime the paper
  // simulates. The count must still respect 2*s^{3/2}.
  for (int64_t n : {25, 100, 400}) {
    Result<Instance> packed =
        PackedInstance(n, /*seed=*/static_cast<uint64_t>(n));
    ASSERT_TRUE(packed.ok());
    AdversarialComparator cmp(&*packed, /*delta=*/1.0,
                              AdversarialPolicy::kFirstLoses);
    Result<MaxFindResult> result = TwoMaxFind(packed->AllElements(), &cmp);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_LE(result->paid_comparisons, TwoMaxFindComparisonUpperBound(n));
    // The adversary should force strictly more work than the oracle needs.
    OracleComparator oracle(&*packed);
    Result<MaxFindResult> easy = TwoMaxFind(packed->AllElements(), &oracle);
    ASSERT_TRUE(easy.ok());
    EXPECT_GT(result->paid_comparisons, easy->paid_comparisons);
  }
}

// Guarantee sweep: under T(delta, 0) the returned element is within
// 2*delta of the maximum, for every tie behaviour.
class TwoMaxFindGuaranteeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {};

TEST_P(TwoMaxFindGuaranteeSweep, TwoDeltaGuarantee) {
  const auto [n, seed] = GetParam();
  Result<Instance> instance = UniformInstance(n, seed);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(std::max<int64_t>(2, n / 10));

  ThresholdComparator::Options fresh;
  fresh.model = ThresholdModel{delta, 0.0};
  ThresholdComparator::Options sticky = fresh;
  sticky.tie_policy = TiePolicy::kPersistentArbitrary;

  ThresholdComparator cmp_fresh(&*instance, fresh, seed + 1);
  ThresholdComparator cmp_sticky(&*instance, sticky, seed + 2);
  AdversarialComparator cmp_adv(&*instance, delta,
                                AdversarialPolicy::kLowerValueWins);

  for (Comparator* cmp : {static_cast<Comparator*>(&cmp_fresh),
                          static_cast<Comparator*>(&cmp_sticky),
                          static_cast<Comparator*>(&cmp_adv)}) {
    Result<MaxFindResult> result = TwoMaxFind(instance->AllElements(), cmp);
    ASSERT_TRUE(result.ok());
    const double distance =
        instance->Distance(result->best, instance->MaxElement());
    EXPECT_LE(distance, 2.0 * delta + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoMaxFindGuaranteeSweep,
    ::testing::Combine(::testing::Values<int64_t>(20, 60, 150),
                       ::testing::Values<uint64_t>(5, 6, 7, 8)));

TEST(TwoMaxFindTest, WithoutMemoizationStillFindsMaxWithOracle) {
  Result<Instance> instance = UniformInstance(80, /*seed=*/55);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  TwoMaxFindOptions options;
  options.memoize = false;
  Result<MaxFindResult> result =
      TwoMaxFind(instance->AllElements(), &oracle, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
}

TEST(TwoMaxFindTest, MemoizationReducesPaidComparisons) {
  Result<Instance> instance = UniformInstance(150, /*seed=*/66);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle_a(&*instance);
  OracleComparator oracle_b(&*instance);
  TwoMaxFindOptions no_memo;
  no_memo.memoize = false;
  Result<MaxFindResult> with = TwoMaxFind(instance->AllElements(), &oracle_a);
  Result<MaxFindResult> without =
      TwoMaxFind(instance->AllElements(), &oracle_b, no_memo);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LE(with->paid_comparisons, without->paid_comparisons);
  EXPECT_EQ(with->issued_comparisons, without->issued_comparisons);
}

TEST(RandomizedMaxFindTest, ExactWithOracle) {
  for (int64_t n : {5, 30, 120}) {
    Result<Instance> instance =
        UniformInstance(n, /*seed=*/static_cast<uint64_t>(n + 3));
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    RandomizedMaxFindOptions options;
    options.seed = static_cast<uint64_t>(n);
    Result<MaxFindResult> result =
        RandomizedMaxFind(instance->AllElements(), &oracle, options);
    ASSERT_TRUE(result.ok()) << "n=" << n;
    EXPECT_EQ(result->best, instance->MaxElement()) << "n=" << n;
  }
}

TEST(RandomizedMaxFindTest, ThreeDeltaGuaranteeUnderThresholdModel) {
  int within = 0;
  constexpr int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(120, /*seed=*/300 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(10);
    ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0},
                            /*seed=*/400 + static_cast<uint64_t>(t));
    RandomizedMaxFindOptions options;
    options.seed = 500 + static_cast<uint64_t>(t);
    Result<MaxFindResult> result =
        RandomizedMaxFind(instance->AllElements(), &cmp, options);
    ASSERT_TRUE(result.ok());
    if (instance->Distance(result->best, instance->MaxElement()) <=
        3.0 * delta + 1e-12) {
      ++within;
    }
  }
  EXPECT_GE(within, kTrials - 2);  // "w.h.p." with margin for noise.
}

TEST(RandomizedMaxFindTest, CostExceedsTwoMaxFindAtPaperSizes) {
  // Section 4.1.2: the linear algorithm's constants dominate at the sizes
  // the paper considers, so 2-MaxFind is cheaper in practice.
  Result<Instance> instance = UniformInstance(99, /*seed=*/71);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle_a(&*instance);
  OracleComparator oracle_b(&*instance);
  Result<MaxFindResult> randomized =
      RandomizedMaxFind(instance->AllElements(), &oracle_a, {});
  Result<MaxFindResult> deterministic =
      TwoMaxFind(instance->AllElements(), &oracle_b);
  ASSERT_TRUE(randomized.ok());
  ASSERT_TRUE(deterministic.ok());
  EXPECT_GT(randomized->paid_comparisons, deterministic->paid_comparisons);
}

TEST(RandomizedMaxFindTest, GroupSizeOverrideShrinksCost) {
  Result<Instance> instance = UniformInstance(200, /*seed=*/81);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle_a(&*instance);
  OracleComparator oracle_b(&*instance);
  RandomizedMaxFindOptions small_groups;
  small_groups.group_size_override = 8;
  Result<MaxFindResult> big =
      RandomizedMaxFind(instance->AllElements(), &oracle_a, {});
  Result<MaxFindResult> small =
      RandomizedMaxFind(instance->AllElements(), &oracle_b, small_groups);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->paid_comparisons, big->paid_comparisons);
}

TEST(RandomizedMaxFindTest, RejectsBadOptions) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  RandomizedMaxFindOptions bad_exponent;
  bad_exponent.sample_exponent = 1.5;
  EXPECT_FALSE(RandomizedMaxFind({0, 1}, &oracle, bad_exponent).ok());
  RandomizedMaxFindOptions bad_c;
  bad_c.c = -1;
  EXPECT_FALSE(RandomizedMaxFind({0, 1}, &oracle, bad_c).ok());
  RandomizedMaxFindOptions bad_group;
  bad_group.group_size_override = -5;
  EXPECT_FALSE(RandomizedMaxFind({0, 1}, &oracle, bad_group).ok());
}

TEST(MaxFindBoundsTest, UpperBoundHelperGrowsLikeSThreeHalves) {
  EXPECT_EQ(TwoMaxFindComparisonUpperBound(0), 0);
  EXPECT_EQ(TwoMaxFindComparisonUpperBound(1), 2);
  EXPECT_EQ(TwoMaxFindComparisonUpperBound(100), 2000);
  EXPECT_LT(TwoMaxFindComparisonUpperBound(100) * 7,
            TwoMaxFindComparisonUpperBound(400));
}

}  // namespace
}  // namespace crowdmax
