// Gold quality control under a spammer-heavy pool (spammer_fraction 0.5):
// the platform must eventually distrust the spammers, and Lemma 1 ("the
// maximum survives filtering") must keep holding on DOTS because the
// counted majority is then dominated by honest votes.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/dots.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

// Easy gold questions: far-apart dot counts that honest workers nearly
// always order correctly while spammers coin-flip.
std::vector<ComparisonTask> EasyGoldTasks(const Instance& instance) {
  std::vector<ComparisonTask> tasks;
  const ElementId half = instance.size() / 2;
  for (ElementId a = 0; a < half; ++a) tasks.push_back({a, a + half});
  return tasks;
}

TEST(GoldQualityTest, SpammerHeavyPoolGetsUntrusted) {
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(30, /*seed=*/600);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();
  RelativeErrorComparator crowd(&instance, DotsWorkerModel(), /*seed=*/601);

  PlatformOptions options;
  options.num_workers = 20;
  options.spammer_fraction = 0.5;
  options.gold_task_probability = 0.5;
  options.seed = 602;
  auto platform = CrowdPlatform::Create(&crowd, &instance,
                                        EasyGoldTasks(instance), options);
  ASSERT_TRUE(platform.ok());
  ASSERT_EQ((*platform)->num_spammers(), 10);

  // Enough exposure for every worker to accumulate a gold record.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 10).ok());
  }
  // Most spammers are caught (spammers pass a gold question with p=0.5,
  // so surviving the 70% bar over many questions is vanishingly rare)...
  EXPECT_GE((*platform)->gold().num_untrusted(), 8);
  // ...and only spammers can be caught: honest workers' gold accuracy is
  // far above the bar.
  EXPECT_LE((*platform)->gold().num_untrusted(), (*platform)->num_spammers());
  EXPECT_GT((*platform)->discarded_votes(), 0);
}

TEST(GoldQualityTest, LemmaOneSurvivesSpammerHeavyPool) {
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(30, /*seed=*/610);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();
  RelativeErrorComparator crowd(&instance, DotsWorkerModel(), /*seed=*/611);

  PlatformOptions options;
  options.num_workers = 30;
  options.spammer_fraction = 0.5;
  options.gold_task_probability = 0.5;
  options.seed = 612;
  auto platform = CrowdPlatform::Create(&crowd, &instance,
                                        EasyGoldTasks(instance), options);
  ASSERT_TRUE(platform.ok());

  // Warm the gold ledger so spam is muted before filtering starts (the
  // paper's platform runs gold continuously; filtering mid-warm-up only
  // adds noise the majority already tolerates).
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 10).ok());
  }
  ASSERT_GT((*platform)->gold().num_untrusted(), 0);

  auto executor = PlatformBatchExecutor::Create(platform->get(), /*votes=*/7);
  ASSERT_TRUE(executor.ok());
  FilterOptions filter;
  filter.u_n = 5;
  Result<BatchedFilterResult> result = BatchedFilterCandidates(
      instance.AllElements(), filter, executor->get());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->partial);

  // Lemma 1: the element with the fewest dots survives the filter.
  const std::vector<ElementId>& candidates = result->filter.candidates;
  EXPECT_NE(std::find(candidates.begin(), candidates.end(),
                      instance.MaxElement()),
            candidates.end());
  EXPECT_LE(static_cast<int64_t>(candidates.size()), 2 * filter.u_n - 1);
}

}  // namespace
}  // namespace crowdmax
