// Tests for the metrics registry (common/metrics.h): instrument
// semantics, the global enable gate, report determinism, and concurrent
// counter increments from the thread pool (run under -L tsan).

#include "common/metrics.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace crowdmax {
namespace {

// The registry's instruments are process-global; each test uses its own
// instrument names and resets values so tests stay order-independent.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Default()->Reset();
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    MetricsRegistry::Default()->Reset();
  }
};

TEST_F(MetricsTest, CounterAccumulatesAndResets) {
  Counter* counter = MetricsRegistry::Default()->GetCounter("test.counter");
  EXPECT_EQ(counter->value(), 0);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42);

  MetricsRegistry::Default()->Reset();
  EXPECT_EQ(counter->value(), 0);
  // The pointer survives Reset(): registrations are never deleted.
  EXPECT_EQ(MetricsRegistry::Default()->GetCounter("test.counter"), counter);
}

TEST_F(MetricsTest, DisabledInstrumentsDropWrites) {
  Counter* counter = MetricsRegistry::Default()->GetCounter("test.gated");
  Histogram* histogram = MetricsRegistry::Default()->GetHistogram(
      "test.gated_histogram", ExponentialBounds(4));
  SetMetricsEnabled(false);
  counter->Add(7);
  histogram->Observe(3);
  EXPECT_EQ(counter->value(), 0);
  EXPECT_EQ(histogram->count(), 0);

  SetMetricsEnabled(true);
  counter->Add(7);
  histogram->Observe(3);
  EXPECT_EQ(counter->value(), 7);
  EXPECT_EQ(histogram->count(), 1);
}

TEST_F(MetricsTest, GaugeIsLastWriteWins) {
  Gauge* gauge = MetricsRegistry::Default()->GetGauge("test.gauge");
  gauge->Set(10);
  gauge->Set(3);
  EXPECT_EQ(gauge->value(), 3);
}

TEST_F(MetricsTest, HistogramBucketsObservations) {
  // Bounds 1, 2, 4, 8: observation v lands in the first bucket with
  // bound >= v; larger values land in the overflow bucket.
  Histogram* histogram = MetricsRegistry::Default()->GetHistogram(
      "test.histogram", ExponentialBounds(4));
  ASSERT_EQ(histogram->bounds(), (std::vector<int64_t>{1, 2, 4, 8}));
  for (int64_t v : {1, 2, 2, 3, 8, 9, 100}) histogram->Observe(v);

  EXPECT_EQ(histogram->count(), 7);
  EXPECT_EQ(histogram->sum(), 1 + 2 + 2 + 3 + 8 + 9 + 100);
  EXPECT_EQ(histogram->bucket_counts(),
            (std::vector<int64_t>{1, 2, 1, 1, 2}));
}

TEST_F(MetricsTest, HistogramBoundIsInclusive) {
  // Regression for the boundary semantics: bucket i counts observations
  // <= bounds[i], so a value exactly on a bound lands in that bucket, not
  // the next one. An off-by-one here silently shifts every latency report.
  Histogram* histogram = MetricsRegistry::Default()->GetHistogram(
      "test.exact_bounds", ExponentialBounds(4));
  ASSERT_EQ(histogram->bounds(), (std::vector<int64_t>{1, 2, 4, 8}));
  for (int64_t v : {1, 2, 4, 8}) histogram->Observe(v);
  EXPECT_EQ(histogram->bucket_counts(),
            (std::vector<int64_t>{1, 1, 1, 1, 0}));
}

TEST_F(MetricsTest, HistogramOverflowBucketStartsPastTheLastBound) {
  // bounds.back() itself is still in the last finite bucket; only strictly
  // larger observations overflow. Sum/count must include overflow values.
  Histogram* histogram = MetricsRegistry::Default()->GetHistogram(
      "test.overflow_bounds", ExponentialBounds(3));
  ASSERT_EQ(histogram->bounds(), (std::vector<int64_t>{1, 2, 4}));
  histogram->Observe(4);
  histogram->Observe(5);
  histogram->Observe(1 << 30);
  EXPECT_EQ(histogram->bucket_counts(), (std::vector<int64_t>{0, 0, 1, 2}));
  EXPECT_EQ(histogram->count(), 3);
  EXPECT_EQ(histogram->sum(), 4 + 5 + (1 << 30));
}

TEST_F(MetricsTest, GetHistogramReturnsOriginalOnReRegistration) {
  Histogram* first = MetricsRegistry::Default()->GetHistogram(
      "test.reregistered", ExponentialBounds(4));
  Histogram* second = MetricsRegistry::Default()->GetHistogram(
      "test.reregistered", ExponentialBounds(10));
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds().size(), 4u);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsAreLossless) {
  Counter* counter =
      MetricsRegistry::Default()->GetCounter("test.concurrent");
  constexpr int64_t kTasks = 64;
  constexpr int64_t kAddsPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](int64_t) {
    for (int64_t i = 0; i < kAddsPerTask; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->value(), kTasks * kAddsPerTask);
}

TEST_F(MetricsTest, ReportsAreDeterministic) {
  MetricsRegistry::Default()->GetCounter("test.report.b")->Add(2);
  MetricsRegistry::Default()->GetCounter("test.report.a")->Add(1);
  MetricsRegistry::Default()->GetGauge("test.report.gauge")->Set(5);
  MetricsRegistry::Default()
      ->GetHistogram("test.report.histogram", ExponentialBounds(2))
      ->Observe(2);

  std::ostringstream json1, json2, csv;
  MetricsRegistry::Default()->WriteJson(json1);
  MetricsRegistry::Default()->WriteJson(json2);
  MetricsRegistry::Default()->WriteCsv(csv);
  EXPECT_EQ(json1.str(), json2.str());

  // Name-sorted: counter a precedes counter b in both formats.
  const std::string json = json1.str();
  EXPECT_LT(json.find("test.report.a"), json.find("test.report.b"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_LT(csv.str().find("test.report.a"), csv.str().find("test.report.b"));
}

}  // namespace
}  // namespace crowdmax
