// Tests for the platform-level fault model (FaultOptions): abandonment,
// stragglers, churn, transient unavailability, quorum dispositions, seeded
// replay, and the end-to-end acceptance runs — Algorithm 1 over
// ResilientBatchExecutor on faulty DOTS and CARS platforms.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/resilient.h"
#include "core/worker_model.h"
#include "datasets/cars.h"
#include "datasets/dots.h"
#include "datasets/instances.h"
#include "platform/platform.h"
#include "platform/worker.h"

namespace crowdmax {
namespace {

TEST(SimulatedWorkerFaultTest, AbandonsAndStragglesAtConfiguredRates) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  SimulatedWorker::Options options;
  options.abandon_probability = 0.3;
  options.straggler_probability = 0.2;
  SimulatedWorker worker(0, &oracle, options, /*seed=*/21);

  constexpr int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    const WorkerResponse response = worker.Respond({0, 1});
    switch (response.disposition) {
      case VoteDisposition::kAbandoned:
        EXPECT_EQ(response.winner, -1);  // No answer ever arrived.
        break;
      case VoteDisposition::kDropped:
        EXPECT_EQ(response.winner, 1);  // The late answer is still recorded.
        break;
      default:
        EXPECT_EQ(response.winner, 1);
    }
  }
  EXPECT_NEAR(static_cast<double>(worker.tasks_abandoned()) / kTrials, 0.3,
              0.08);
  EXPECT_GT(worker.tasks_straggled(), 0);
  EXPECT_EQ(worker.tasks_abandoned() + worker.tasks_answered(), kTrials);
}

TEST(SimulatedWorkerFaultTest, FaultFreeRespondMatchesAnswer) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  SimulatedWorker with_respond(0, &oracle, {}, /*seed=*/3);
  SimulatedWorker with_answer(0, &oracle, {}, /*seed=*/3);
  for (int i = 0; i < 50; ++i) {
    const WorkerResponse response = with_respond.Respond({0, 1});
    EXPECT_EQ(response.disposition, VoteDisposition::kCounted);
    EXPECT_EQ(response.winner, with_answer.Answer({0, 1}));
  }
}

// Shared fixture config: a clean pool so every lost vote is a fault.
PlatformOptions FaultyOptions(const FaultOptions& fault) {
  PlatformOptions options;
  options.num_workers = 10;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.gold_task_probability = 0.0;
  options.record_transcript = true;
  options.seed = 17;
  options.fault = fault;
  return options;
}

TEST(PlatformFaultTest, ValidatesFaultOptions) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.abandon_probability = 1.0;
  EXPECT_FALSE(CrowdPlatform::Create(&oracle, &instance, {},
                                     FaultyOptions(fault))
                   .ok());
  fault = {};
  fault.churn_probability = -0.1;
  EXPECT_FALSE(CrowdPlatform::Create(&oracle, &instance, {},
                                     FaultyOptions(fault))
                   .ok());
  fault = {};
  fault.min_quorum = 0;
  EXPECT_FALSE(CrowdPlatform::Create(&oracle, &instance, {},
                                     FaultyOptions(fault))
                   .ok());
}

TEST(PlatformFaultTest, AbandonedVotesAuditedAndNotCounted) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.abandon_probability = 0.4;
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 5).ok());
  }
  const PlatformFaultStats& stats = (*platform)->fault_stats();
  EXPECT_GT(stats.abandoned_votes, 0);
  EXPECT_EQ(stats.votes_lost(), stats.abandoned_votes);

  int64_t abandoned_in_transcript = 0;
  for (const TaskOutcome& outcome : (*platform)->transcript()) {
    for (const Vote& vote : outcome.votes) {
      if (vote.disposition == VoteDisposition::kAbandoned) {
        EXPECT_FALSE(vote.counted);
        EXPECT_EQ(vote.winner, -1);
        ++abandoned_in_transcript;
      }
    }
  }
  EXPECT_EQ(abandoned_in_transcript, stats.abandoned_votes);
  // Abandoned assignments never became billable votes.
  EXPECT_EQ((*platform)->total_votes(), 100 - stats.abandoned_votes);
}

TEST(PlatformFaultTest, StragglerVotesRecordedButDiscarded) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.straggler_probability = 0.4;
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 5).ok());
  }
  const PlatformFaultStats& stats = (*platform)->fault_stats();
  EXPECT_GT(stats.straggler_votes, 0);

  int64_t stragglers_in_transcript = 0;
  for (const TaskOutcome& outcome : (*platform)->transcript()) {
    for (const Vote& vote : outcome.votes) {
      if (vote.disposition == VoteDisposition::kDropped) {
        EXPECT_FALSE(vote.counted);
        EXPECT_NE(vote.winner, -1);  // The late answer is in the audit trail.
        ++stragglers_in_transcript;
      }
    }
  }
  EXPECT_EQ(stragglers_in_transcript, stats.straggler_votes);
  // Straggler answers are billed (the work happened) but never counted.
  EXPECT_EQ((*platform)->total_votes(), 100);
}

TEST(PlatformFaultTest, ChurnReplacesWorkersWithFreshIds) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.churn_probability = 0.2;
  fault.seed = 5;
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 5).ok());
  }
  EXPECT_GT((*platform)->fault_stats().churned_workers, 0);
  EXPECT_EQ((*platform)->num_workers(), 10);  // Pool size is stable.

  // Replacement workers carry fresh ids beyond the original pool.
  bool saw_replacement_vote = false;
  for (const TaskOutcome& outcome : (*platform)->transcript()) {
    for (const Vote& vote : outcome.votes) {
      if (vote.worker_id >= 10) saw_replacement_vote = true;
    }
  }
  EXPECT_TRUE(saw_replacement_vote);
}

TEST(PlatformFaultTest, TransientUnavailabilityIsTypedAndUncharged) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.unavailable_probability = 0.4;
  fault.seed = 6;
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  int64_t failures = 0;
  constexpr int kCalls = 40;
  for (int i = 0; i < kCalls; ++i) {
    Result<std::vector<TaskOutcome>> outcomes =
        (*platform)->SubmitBatch({{0, 1}}, 3);
    if (!outcomes.ok()) {
      EXPECT_EQ(outcomes.status().code(), StatusCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, kCalls);
  EXPECT_EQ((*platform)->fault_stats().unavailable_errors, failures);
  // A rejected submission consumes no step and no votes.
  EXPECT_EQ((*platform)->logical_steps(), kCalls - failures);
  EXPECT_EQ((*platform)->total_votes(), 3 * (kCalls - failures));
}

TEST(PlatformFaultTest, MinQuorumFlagsProvisionalOutcomes) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.min_quorum = 5;  // More than the 3 votes each task will get.
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  Result<std::vector<TaskOutcome>> outcomes =
      (*platform)->SubmitBatch({{0, 1}}, 3);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ((*outcomes)[0].disposition, TaskDisposition::kNoQuorum);
  EXPECT_EQ((*outcomes)[0].majority_winner, 1);  // Provisional but present.
  EXPECT_EQ((*platform)->fault_stats().no_quorum_tasks, 1);
}

TEST(PlatformFaultTest, FullyAbandonedTaskIsDroppedNotCoinFlipped) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  FaultOptions fault;
  fault.abandon_probability = 0.9;
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions(fault));
  ASSERT_TRUE(platform.ok());

  bool saw_dropped = false;
  for (int i = 0; i < 20 && !saw_dropped; ++i) {
    Result<std::vector<TaskOutcome>> outcomes =
        (*platform)->SubmitBatch({{0, 1}}, 1);
    ASSERT_TRUE(outcomes.ok());
    if ((*outcomes)[0].disposition == TaskDisposition::kDropped) {
      EXPECT_EQ((*outcomes)[0].majority_winner, -1);
      EXPECT_EQ((*outcomes)[0].counted_votes, 0);
      saw_dropped = true;
    }
  }
  EXPECT_TRUE(saw_dropped);
  EXPECT_GT((*platform)->fault_stats().dropped_tasks, 0);
}

TEST(PlatformFaultTest, DisabledFaultsLeaveLegacyBehaviour) {
  Instance instance({1.0, 5.0});
  OracleComparator oracle(&instance);
  auto platform =
      CrowdPlatform::Create(&oracle, &instance, {}, FaultyOptions({}));
  ASSERT_TRUE(platform.ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*platform)->SubmitBatch({{0, 1}}, 5).ok());
  }
  const PlatformFaultStats& stats = (*platform)->fault_stats();
  EXPECT_EQ(stats.abandoned_votes, 0);
  EXPECT_EQ(stats.straggler_votes, 0);
  EXPECT_EQ(stats.churned_workers, 0);
  EXPECT_EQ(stats.unavailable_errors, 0);
  EXPECT_EQ(stats.no_quorum_tasks, 0);
  EXPECT_EQ(stats.dropped_tasks, 0);
  for (const TaskOutcome& outcome : (*platform)->transcript()) {
    EXPECT_EQ(outcome.disposition, TaskDisposition::kAnswered);
    for (const Vote& vote : outcome.votes) {
      EXPECT_EQ(vote.disposition, VoteDisposition::kCounted);
    }
  }
}

std::string FaultyRunCsv(uint64_t fault_seed) {
  Result<Instance> instance = UniformInstance(20, /*seed=*/8);
  CROWDMAX_CHECK(instance.ok());
  ThresholdComparator crowd(&*instance, ThresholdModel{0.05, 0.1},
                            /*seed=*/9);
  FaultOptions fault;
  fault.abandon_probability = 0.15;
  fault.straggler_probability = 0.1;
  fault.churn_probability = 0.1;
  fault.unavailable_probability = 0.1;
  fault.min_quorum = 2;
  fault.seed = fault_seed;
  auto platform =
      CrowdPlatform::Create(&crowd, &*instance, {}, FaultyOptions(fault));
  CROWDMAX_CHECK(platform.ok());
  for (ElementId e = 1; e < 15; ++e) {
    (void)(*platform)->SubmitBatch({{0, e}, {e, e / 2}}, 3);
  }
  std::ostringstream csv;
  CROWDMAX_CHECK((*platform)->ExportTranscriptCsv(csv).ok());
  return csv.str();
}

TEST(PlatformFaultTest, SameFaultSeedReplaysBitForBit) {
  const std::string first = FaultyRunCsv(/*fault_seed=*/71);
  EXPECT_EQ(first, FaultyRunCsv(/*fault_seed=*/71));
  EXPECT_NE(first, FaultyRunCsv(/*fault_seed=*/72));
  // The audit trail names the fault dispositions.
  EXPECT_NE(first.find("vote_disposition,task_disposition"),
            std::string::npos);
}

// --------------------------------------------------- End-to-end acceptance.

// Algorithm 1 over ResilientBatchExecutor on a faulty platform. Returns
// the full batched result for inspection.
Result<BatchedExpertMaxResult> RunFaultyAlgorithm1(
    const Instance& instance, Comparator* naive_model,
    Comparator* expert_model, int64_t u_n, uint64_t fault_seed) {
  FaultOptions fault;
  fault.abandon_probability = 0.1;
  fault.churn_probability = 0.05;
  fault.min_quorum = 2;
  fault.seed = fault_seed;

  PlatformOptions options;
  options.num_workers = 40;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.seed = fault_seed * 31 + 7;
  options.fault = fault;

  auto naive_platform =
      CrowdPlatform::Create(naive_model, &instance, {}, options);
  CROWDMAX_CHECK(naive_platform.ok());
  auto expert_platform =
      CrowdPlatform::Create(expert_model, &instance, {}, options);
  CROWDMAX_CHECK(expert_platform.ok());

  auto naive_executor =
      PlatformBatchExecutor::Create(naive_platform->get(), /*votes=*/3);
  auto expert_executor =
      PlatformBatchExecutor::Create(expert_platform->get(), /*votes=*/7);
  CROWDMAX_CHECK(naive_executor.ok() && expert_executor.ok());

  ResilientOptions resilient_options;
  resilient_options.max_retries = 6;
  resilient_options.min_votes = 2;
  auto naive = ResilientBatchExecutor::Create(naive_executor->get(),
                                              resilient_options);
  auto expert = ResilientBatchExecutor::Create(expert_executor->get(),
                                               resilient_options);
  CROWDMAX_CHECK(naive.ok() && expert.ok());

  ExpertMaxOptions algo;
  algo.filter.u_n = u_n;
  return BatchedFindMaxWithExperts(instance.AllElements(), naive->get(),
                                   expert->get(), algo);
}

TEST(FaultAcceptanceTest, DotsSurvivesAbandonmentAndChurn) {
  // Acceptance: abandon 0.1 + churn 0.05, three fault seeds, true max.
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(30, /*seed=*/123);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();

  // Phase-2 experts discriminate below the max/runner-up gap, so any run
  // where the filter keeps the max must return it exactly — the test then
  // isolates whether recovery preserved the filter guarantee.
  const double delta_e = 0.5 * instance.DeltaForU(2);
  for (uint64_t fault_seed : {1u, 2u, 3u}) {
    RelativeErrorComparator crowd(&instance, DotsWorkerModel(),
                                  /*seed=*/900 + fault_seed);
    ThresholdComparator expert_model(&instance, ThresholdModel{delta_e, 0.0},
                                     /*seed=*/950 + fault_seed);
    Result<BatchedExpertMaxResult> result = RunFaultyAlgorithm1(
        instance, &crowd, &expert_model, /*u_n=*/5, fault_seed);
    ASSERT_TRUE(result.ok()) << "fault_seed=" << fault_seed;
    EXPECT_FALSE(result->partial) << "fault_seed=" << fault_seed;
    EXPECT_EQ(result->result.best, instance.MaxElement())
        << "fault_seed=" << fault_seed;
    ASSERT_TRUE(result->has_naive_faults);
    // The fault rates guarantee losses; recovery must have done real work.
    EXPECT_GT(result->naive_faults.votes_lost +
                  result->naive_faults.relaxed_accepts,
              0)
        << "fault_seed=" << fault_seed;
  }
}

TEST(FaultAcceptanceTest, CarsSurvivesAbandonmentAndChurn) {
  // CARS is the persistent-bias regime: phase 2 needs true experts (a
  // tighter threshold model), but both phases run on faulty platforms.
  CarsDataset cars = CarsDataset::Standard(/*seed=*/300);
  Result<CarsDataset> sampled = cars.Sample(40, /*seed=*/301);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();

  // A true expert resolving prices below the max/runner-up gap (the $400
  // threshold of the integration test still coin-flips near-ties, which
  // an all-seeds-exact acceptance bar cannot tolerate).
  const double delta_e = 0.5 * instance.DeltaForU(2);
  for (uint64_t fault_seed : {1u, 2u, 3u}) {
    PersistentBiasComparator crowd(&instance, CarsWorkerModel(),
                                   /*seed=*/700 + fault_seed);
    ThresholdComparator expert_model(&instance, ThresholdModel{delta_e, 0.0},
                                     /*seed=*/750 + fault_seed);
    // u_n = 15: the 40-car catalog puts more cars inside the crowd's
    // relative-difference blind spot than the 10 the integration test
    // budgets for 50, and the all-seeds-exact bar leaves no slack for an
    // undershot u_n evicting the max in phase 1.
    Result<BatchedExpertMaxResult> result = RunFaultyAlgorithm1(
        instance, &crowd, &expert_model, /*u_n=*/15, fault_seed);
    ASSERT_TRUE(result.ok()) << "fault_seed=" << fault_seed;
    EXPECT_FALSE(result->partial) << "fault_seed=" << fault_seed;
    EXPECT_EQ(result->result.best, instance.MaxElement())
        << "fault_seed=" << fault_seed;
  }
}

TEST(FaultAcceptanceTest, DeterministicFaultReplaySmoke) {
  // The default-ctest smoke test: the same fault seed replays the whole
  // faulty pipeline to the same answer and the same recovery accounting.
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(20, /*seed=*/40);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();

  auto run = [&] {
    RelativeErrorComparator crowd(&instance, DotsWorkerModel(), /*seed=*/41);
    RelativeErrorComparator expert_crowd(&instance, DotsWorkerModel(),
                                         /*seed=*/42);
    Result<BatchedExpertMaxResult> result = RunFaultyAlgorithm1(
        instance, &crowd, &expert_crowd, /*u_n=*/4, /*fault_seed=*/9);
    CROWDMAX_CHECK(result.ok());
    return *result;
  };
  const BatchedExpertMaxResult first = run();
  const BatchedExpertMaxResult second = run();
  EXPECT_EQ(first.result.best, second.result.best);
  EXPECT_EQ(first.naive_steps, second.naive_steps);
  EXPECT_EQ(first.expert_steps, second.expert_steps);
  EXPECT_EQ(first.naive_faults.attempts, second.naive_faults.attempts);
  EXPECT_EQ(first.naive_faults.votes_lost, second.naive_faults.votes_lost);
  EXPECT_EQ(first.expert_faults.retried_tasks,
            second.expert_faults.retried_tasks);
}

}  // namespace
}  // namespace crowdmax
