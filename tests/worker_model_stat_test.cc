// Statistical tests for the worker models: with fixed seeds and ~10^5
// draws, the empirical answer rates must match the model's stated
// probabilities within a generous binomial confidence interval (5 sigma, so
// a correct implementation essentially never flakes), and indistinguishable
// pairs must demonstrably carry NO correctness guarantee — the threshold
// model allows the crowd to be wrong on them every single time.

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/instance.h"
#include "core/worker_model.h"

namespace crowdmax {
namespace {

constexpr int64_t kDraws = 100000;

// Half-width of a 5-sigma binomial confidence interval around p.
double Bound(double p, int64_t n) {
  return 5.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
}

// Fraction of kDraws queries on (a, b) answered with `expected`.
double RateOf(Comparator* cmp, ElementId a, ElementId b, ElementId expected) {
  int64_t hits = 0;
  for (int64_t i = 0; i < kDraws; ++i) {
    if (cmp->Compare(a, b) == expected) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(kDraws);
}

TEST(WorkerModelStatTest, AboveThresholdErrorRateMatchesEpsilon) {
  // d(0, 1) = 1.0 > delta, so element 1 (the larger) must win with
  // probability 1 - epsilon.
  Instance instance({0.0, 1.0});
  for (double epsilon : {0.05, 0.2, 0.4}) {
    ThresholdComparator cmp(&instance, ThresholdModel{0.1, epsilon},
                            /*seed=*/1234);
    const double error = RateOf(&cmp, 0, 1, /*expected=*/0);
    EXPECT_NEAR(error, epsilon, Bound(epsilon, kDraws))
        << "epsilon=" << epsilon;
  }
}

TEST(WorkerModelStatTest, BelowThresholdIsAFairCoinByDefault) {
  // d(0, 1) = 0.01 <= delta = 0.1: the paper's simulation behaviour is a
  // fresh fair coin per query.
  Instance instance({0.50, 0.51});
  ThresholdComparator cmp(&instance, ThresholdModel{0.1, 0.0}, /*seed=*/99);
  const double correct = RateOf(&cmp, 0, 1, /*expected=*/1);
  EXPECT_NEAR(correct, 0.5, Bound(0.5, kDraws));
}

TEST(WorkerModelStatTest, IndistinguishablePairsHaveNoCorrectnessGuarantee) {
  // The model says the answer below the threshold is completely arbitrary.
  // below_threshold_correct_prob = 0 realizes the extreme: the crowd is
  // wrong on the hard pair on every one of 10^5 queries. Nothing about
  // error rates above delta constrains this.
  Instance instance({0.50, 0.51});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{0.1, 0.0};
  options.below_threshold_correct_prob = 0.0;
  ThresholdComparator cmp(&instance, options, /*seed=*/7);
  const double correct = RateOf(&cmp, 0, 1, /*expected=*/1);
  EXPECT_EQ(correct, 0.0);
}

TEST(WorkerModelStatTest, BiasedCoinBelowThresholdMatchesConfiguredRate) {
  Instance instance({0.50, 0.51});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{0.1, 0.0};
  options.below_threshold_correct_prob = 0.3;
  ThresholdComparator cmp(&instance, options, /*seed=*/11);
  const double correct = RateOf(&cmp, 0, 1, /*expected=*/1);
  EXPECT_NEAR(correct, 0.3, Bound(0.3, kDraws));
}

TEST(WorkerModelStatTest, PersistentArbitraryTiesAreStickyPerPair) {
  Instance instance({0.50, 0.51, 0.505});
  ThresholdComparator::Options options;
  options.model = ThresholdModel{0.1, 0.0};
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  ThresholdComparator cmp(&instance, options, /*seed=*/13);
  const ElementId first = cmp.Compare(0, 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(cmp.Compare(0, 1), first);
    EXPECT_EQ(cmp.Compare(1, 0), first);  // Order-independent.
  }
}

TEST(WorkerModelStatTest, RelativeErrorDecayMatchesFormula) {
  // rel_diff(0, 1) = |1 - 2| / 2 = 0.5, so
  // P(error) = min(0.5, 0.5 * exp(-4.5 * 0.5)) ~= 0.0527.
  Instance instance({1.0, 2.0});
  RelativeErrorComparator::Options options;  // Defaults: 0.5, 4.5, 0.5.
  RelativeErrorComparator cmp(&instance, options, /*seed=*/17);
  const double expected_error = 0.5 * std::exp(-4.5 * 0.5);
  const double error = RateOf(&cmp, 0, 1, /*expected=*/0);
  EXPECT_NEAR(error, expected_error, Bound(expected_error, kDraws));
}

TEST(WorkerModelStatTest, DistanceDecayErrorMatchesFormula) {
  // d = 0.5, delta = 0.1: P(error) = 0.3 * exp(-5 * 0.4) ~= 0.0406.
  Instance instance({0.0, 0.5});
  DistanceDecayComparator::Options options;  // Defaults: eps 0.3, decay 5.
  options.delta = 0.1;
  DistanceDecayComparator cmp(&instance, options, /*seed=*/19);
  const double expected_error =
      options.epsilon_at_threshold * std::exp(-options.decay * 0.4);
  const double error = RateOf(&cmp, 0, 1, /*expected=*/0);
  EXPECT_NEAR(error, expected_error, Bound(expected_error, kDraws));
}

TEST(WorkerModelStatTest, ForkedWorkerDrawsFromTheSameModel) {
  // A fork is an independent worker of the same class: same error rate
  // (within CI), independent stream — and deterministic given its seed.
  Instance instance({0.0, 1.0});
  ThresholdComparator parent(&instance, ThresholdModel{0.1, 0.25},
                             /*seed=*/23);
  std::unique_ptr<Comparator> fork_a = parent.Fork(1001);
  std::unique_ptr<Comparator> fork_b = parent.Fork(1001);
  ASSERT_NE(fork_a, nullptr);

  const double error = RateOf(fork_a.get(), 0, 1, /*expected=*/0);
  EXPECT_NEAR(error, 0.25, Bound(0.25, kDraws));

  // Same fork seed => bit-identical answer stream.
  ThresholdComparator replay(&instance, ThresholdModel{0.1, 0.25},
                             /*seed=*/23);
  std::unique_ptr<Comparator> fork_c = replay.Fork(1001);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(fork_b->Compare(0, 1), fork_c->Compare(0, 1));
  }
  // The fork's comparisons are its own (sharded counter), not the parent's.
  EXPECT_EQ(parent.num_comparisons(), 0);
  EXPECT_EQ(fork_b->num_comparisons(), 2000);
}

}  // namespace
}  // namespace crowdmax
