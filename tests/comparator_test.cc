// Tests for the comparator boundary: oracle, counting, memoization,
// adversarial policies.

#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/instance.h"

namespace crowdmax {
namespace {

TEST(OracleComparatorTest, ReturnsTrueWinner) {
  Instance instance({1.0, 5.0, 3.0});
  OracleComparator oracle(&instance);
  EXPECT_EQ(oracle.Compare(0, 1), 1);
  EXPECT_EQ(oracle.Compare(1, 0), 1);
  EXPECT_EQ(oracle.Compare(0, 2), 2);
}

TEST(OracleComparatorTest, TiesGoToLowerId) {
  Instance instance({4.0, 4.0});
  OracleComparator oracle(&instance);
  EXPECT_EQ(oracle.Compare(0, 1), 0);
  EXPECT_EQ(oracle.Compare(1, 0), 0);
}

TEST(OracleComparatorTest, CountsComparisons) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  EXPECT_EQ(oracle.num_comparisons(), 0);
  oracle.Compare(0, 1);
  oracle.Compare(0, 1);
  EXPECT_EQ(oracle.num_comparisons(), 2);
  oracle.ResetCount();
  EXPECT_EQ(oracle.num_comparisons(), 0);
}

TEST(MemoizingComparatorTest, PaysOncePerUnorderedPair) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  MemoizingComparator memo(&oracle);

  EXPECT_EQ(memo.Compare(0, 1), 1);
  EXPECT_EQ(memo.Compare(0, 1), 1);
  EXPECT_EQ(memo.Compare(1, 0), 1);  // Reversed order hits the same entry.
  EXPECT_EQ(memo.num_comparisons(), 1);
  EXPECT_EQ(memo.cache_hits(), 2);
  EXPECT_EQ(oracle.num_comparisons(), 1);

  EXPECT_EQ(memo.Compare(1, 2), 2);
  EXPECT_EQ(memo.num_comparisons(), 2);
  EXPECT_EQ(memo.cache_size(), 2);
}

TEST(MemoizingComparatorTest, MakesRandomAnswersConsistent) {
  // A comparator that alternates winners; the memoizer must pin the first
  // answer.
  class AlternatingComparator : public Comparator {
   public:
    ElementId DoCompare(ElementId a, ElementId b) override {
      flip_ = !flip_;
      return flip_ ? a : b;
    }

   private:
    bool flip_ = false;
  };

  AlternatingComparator alternating;
  MemoizingComparator memo(&alternating);
  const ElementId first = memo.Compare(3, 4);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(memo.Compare(3, 4), first);
}

TEST(AdversarialComparatorTest, TruthfulAboveThreshold) {
  Instance instance({0.0, 10.0});
  AdversarialComparator cmp(&instance, /*delta=*/1.0,
                            AdversarialPolicy::kFirstLoses);
  EXPECT_EQ(cmp.Compare(0, 1), 1);
  EXPECT_EQ(cmp.Compare(1, 0), 1);
}

TEST(AdversarialComparatorTest, FirstLosesBelowThreshold) {
  Instance instance({0.0, 0.5});
  AdversarialComparator cmp(&instance, /*delta=*/1.0,
                            AdversarialPolicy::kFirstLoses);
  EXPECT_EQ(cmp.Compare(0, 1), 1);
  EXPECT_EQ(cmp.Compare(1, 0), 0);  // Order-dependent by design.
}

TEST(AdversarialComparatorTest, LowerValueWinsBelowThreshold) {
  Instance instance({0.0, 0.5});
  AdversarialComparator cmp(&instance, /*delta=*/1.0,
                            AdversarialPolicy::kLowerValueWins);
  EXPECT_EQ(cmp.Compare(0, 1), 0);
  EXPECT_EQ(cmp.Compare(1, 0), 0);
}

TEST(AdversarialComparatorTest, HigherValueWinsIsTruthfulEverywhere) {
  Instance instance({0.0, 0.5, 10.0});
  AdversarialComparator cmp(&instance, /*delta=*/1.0,
                            AdversarialPolicy::kHigherValueWins);
  EXPECT_EQ(cmp.Compare(0, 1), 1);
  EXPECT_EQ(cmp.Compare(0, 2), 2);
}

TEST(AdversarialComparatorTest, ExactTiesResolveDeterministically) {
  Instance instance({1.0, 1.0});
  AdversarialComparator lower(&instance, 0.5,
                              AdversarialPolicy::kLowerValueWins);
  AdversarialComparator higher(&instance, 0.5,
                               AdversarialPolicy::kHigherValueWins);
  EXPECT_EQ(lower.Compare(0, 1), 1);   // Max id on ties.
  EXPECT_EQ(higher.Compare(0, 1), 0);  // Min id on ties.
}

TEST(AdversarialComparatorTest, BoundaryDistanceCountsAsIndistinguishable) {
  // d(a, b) == delta is "at or below" the threshold in the paper's model.
  Instance instance({0.0, 1.0});
  AdversarialComparator cmp(&instance, /*delta=*/1.0,
                            AdversarialPolicy::kLowerValueWins);
  EXPECT_EQ(cmp.Compare(0, 1), 0);
}

}  // namespace
}  // namespace crowdmax
