// Tests for the all-play-all tournament toolkit, including the
// combinatorial facts (Lemmas 1-2) that Phase 1 relies on.

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(TournamentTest, EmptyAndSingletonAreNoOps) {
  Instance instance({1.0});
  OracleComparator oracle(&instance);
  TournamentResult empty = AllPlayAll({}, &oracle);
  EXPECT_TRUE(empty.wins.empty());
  EXPECT_EQ(empty.comparisons, 0);

  TournamentResult single = AllPlayAll({0}, &oracle);
  ASSERT_EQ(single.wins.size(), 1u);
  EXPECT_EQ(single.wins[0], 0);
  EXPECT_EQ(single.comparisons, 0);
}

TEST(TournamentTest, ComparisonCountIsKChoose2) {
  Result<Instance> instance = UniformInstance(10, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  const TournamentResult result = AllPlayAll(instance->AllElements(), &oracle);
  EXPECT_EQ(result.comparisons, 45);
  EXPECT_EQ(oracle.num_comparisons(), 45);
}

TEST(TournamentTest, WinsSumToComparisons) {
  Result<Instance> instance = UniformInstance(13, /*seed=*/2);
  ASSERT_TRUE(instance.ok());
  ThresholdComparator noisy(&*instance, ThresholdModel{0.2, 0.1}, /*seed=*/3);
  const TournamentResult result = AllPlayAll(instance->AllElements(), &noisy);
  int64_t total = 0;
  for (int64_t w : result.wins) total += w;
  EXPECT_EQ(total, result.comparisons);
  EXPECT_EQ(result.comparisons, 13 * 12 / 2);
}

TEST(TournamentTest, OracleTournamentRanksByValue) {
  Instance instance({5.0, 1.0, 3.0, 4.0, 2.0});
  OracleComparator oracle(&instance);
  const TournamentResult result = AllPlayAll(instance.AllElements(), &oracle);
  EXPECT_EQ(result.wins[0], 4);
  EXPECT_EQ(result.wins[1], 0);
  EXPECT_EQ(result.wins[2], 2);
  EXPECT_EQ(result.wins[3], 3);
  EXPECT_EQ(result.wins[4], 1);
  EXPECT_EQ(IndexOfMostWins(result), 0u);
  EXPECT_EQ(IndexOfFewestWins(result), 1u);
}

TEST(TournamentTest, TiesBreakToEarliestIndex) {
  TournamentResult result;
  result.wins = {2, 3, 3, 1, 1};
  EXPECT_EQ(IndexOfMostWins(result), 1u);
  EXPECT_EQ(IndexOfFewestWins(result), 3u);
}

// Lemma 1: in an all-play-all tournament under the threshold model with
// epsilon = 0, the maximum element wins at least n - u_n comparisons.
class Lemma1Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Sweep, MaximumWinsAtLeastNMinusUn) {
  const uint64_t seed = GetParam();
  Result<Instance> instance = UniformInstance(60, seed);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(8);
  const int64_t u_n = instance->CountWithin(delta);

  ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0}, seed + 1);
  const std::vector<ElementId> all = instance->AllElements();
  const TournamentResult result = AllPlayAll(all, &cmp);
  const ElementId max_elem = instance->MaxElement();
  EXPECT_GE(result.wins[static_cast<size_t>(max_elem)],
            instance->size() - u_n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Sweep,
                         ::testing::Values<uint64_t>(10, 20, 30, 40, 50, 60));

// Lemma 2: at most 2r - 1 elements can win at least |A| - r comparisons,
// for ANY outcome pattern — test against adversarial and random answers.
class Lemma2Sweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(Lemma2Sweep, AtMostTwoRMinusOneBigWinners) {
  const int64_t r = GetParam();
  const int64_t n = 40;
  Result<Instance> packed = PackedInstance(n, /*seed=*/77);
  ASSERT_TRUE(packed.ok());

  // Everything is indistinguishable: answers are a pure coin.
  ThresholdComparator coin(&*packed, ThresholdModel{1.0, 0.0}, /*seed=*/78);
  const TournamentResult result = AllPlayAll(packed->AllElements(), &coin);
  int64_t big_winners = 0;
  for (int64_t w : result.wins) {
    if (w >= n - r) ++big_winners;
  }
  EXPECT_LE(big_winners, 2 * r - 1);
}

INSTANTIATE_TEST_SUITE_P(Rs, Lemma2Sweep,
                         ::testing::Values<int64_t>(1, 2, 3, 5, 8, 13, 20));

}  // namespace
}  // namespace crowdmax
