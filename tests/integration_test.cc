// Cross-module integration tests: the paper's qualitative results
// reproduced at test scale — accuracy ordering (Figure 3), the cost
// crossover in the expert/naive price ratio (Section 5.1), the end-to-end
// platform runs on DOTS and CARS (Tables 1-2), and the search-results
// scenario (Section 5.3).

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/single_class.h"
#include "core/cost.h"
#include "core/estimate.h"
#include "core/expert_max.h"
#include "core/worker_model.h"
#include "datasets/cars.h"
#include "datasets/dots.h"
#include "datasets/instances.h"
#include "datasets/search.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

TEST(IntegrationTest, AccuracyOrderingMatchesFigure3) {
  // Average true rank: expert-only <= Alg1 << naive-only.
  double rank_alg1 = 0.0;
  double rank_naive = 0.0;
  double rank_expert = 0.0;
  constexpr int kTrials = 12;
  constexpr int64_t kN = 600;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t seed = 50 + static_cast<uint64_t>(t);
    Result<Instance> instance = UniformInstance(kN, seed);
    ASSERT_TRUE(instance.ok());
    const double delta_n = instance->DeltaForU(30);
    const double delta_e = instance->DeltaForU(5);
    const int64_t u_n = instance->CountWithin(delta_n);

    ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                              seed * 3 + 1);
    ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                               seed * 3 + 2);

    ExpertMaxOptions options;
    options.filter.u_n = u_n;
    Result<ExpertMaxResult> alg1 = FindMaxWithExperts(
        instance->AllElements(), &naive, &expert, options);
    Result<SingleClassResult> naive_only =
        TwoMaxFindNaiveOnly(instance->AllElements(), &naive);
    Result<SingleClassResult> expert_only =
        TwoMaxFindExpertOnly(instance->AllElements(), &expert);
    ASSERT_TRUE(alg1.ok());
    ASSERT_TRUE(naive_only.ok());
    ASSERT_TRUE(expert_only.ok());

    rank_alg1 += static_cast<double>(instance->Rank(alg1->best));
    rank_naive += static_cast<double>(instance->Rank(naive_only->best));
    rank_expert += static_cast<double>(instance->Rank(expert_only->best));
  }
  rank_alg1 /= kTrials;
  rank_naive /= kTrials;
  rank_expert /= kTrials;

  EXPECT_LT(rank_expert, rank_naive);
  EXPECT_LT(rank_alg1, rank_naive);
  // Alg1 tracks expert-only closely (same phase-2 threshold).
  EXPECT_LT(rank_alg1, rank_expert + 3.0);
}

TEST(IntegrationTest, CostCrossoverAroundRatioTen) {
  // Section 5.1: "if the ratio is less than 10, then our algorithm has a
  // higher cost in the average case"; for large ratios Alg1 wins big.
  constexpr int64_t kN = 800;
  const uint64_t seed = 77;
  Result<Instance> instance = UniformInstance(kN, seed);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(10);
  const double delta_e = instance->DeltaForU(5);
  const int64_t u_n = instance->CountWithin(delta_n);

  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0}, 78);
  ThresholdComparator expert_a(&*instance, ThresholdModel{delta_e, 0.0}, 79);
  ThresholdComparator expert_b(&*instance, ThresholdModel{delta_e, 0.0}, 79);

  ExpertMaxOptions options;
  options.filter.u_n = u_n;
  Result<ExpertMaxResult> alg1 =
      FindMaxWithExperts(instance->AllElements(), &naive, &expert_a, options);
  Result<SingleClassResult> expert_only =
      TwoMaxFindExpertOnly(instance->AllElements(), &expert_b);
  ASSERT_TRUE(alg1.ok());
  ASSERT_TRUE(expert_only.ok());

  CostModel cheap_experts{1.0, 2.0};
  CostModel pricey_experts{1.0, 200.0};
  // At ratio 2 the expert-only baseline is cheaper...
  EXPECT_LT(expert_only->CostUnder(cheap_experts),
            alg1->CostUnder(cheap_experts));
  // ...at ratio 200 Algorithm 1 wins decisively.
  EXPECT_LT(alg1->CostUnder(pricey_experts),
            expert_only->CostUnder(pricey_experts) / 2.0);
}

TEST(IntegrationTest, EstimatedUnDrivesAlgorithmOneEndToEnd) {
  // Full pipeline: estimate u_n from a gold set, then run Algorithm 1 with
  // the estimate; the guarantee must hold.
  const uint64_t seed = 99;
  Result<Instance> gold = UniformInstance(200, seed);
  Result<Instance> data = UniformInstance(1000, seed + 1);
  ASSERT_TRUE(gold.ok() && data.ok());
  const double delta_n = data->DeltaForU(12);
  const double delta_e = data->DeltaForU(3);

  ThresholdComparator gold_worker(&*gold, ThresholdModel{gold->DeltaForU(3),
                                                         0.0},
                                  seed + 2);
  UnEstimateOptions estimate_options;
  estimate_options.p_err = 0.5;
  Result<UnEstimate> estimate =
      EstimateUn(gold->AllElements(), gold->MaxElement(), 1000, &gold_worker,
                 estimate_options);
  ASSERT_TRUE(estimate.ok());

  ThresholdComparator naive(&*data, ThresholdModel{delta_n, 0.0}, seed + 3);
  ThresholdComparator expert(&*data, ThresholdModel{delta_e, 0.0}, seed + 4);
  ExpertMaxOptions options;
  options.filter.u_n = std::max(estimate->u_n, data->CountWithin(delta_n));
  Result<ExpertMaxResult> result =
      FindMaxWithExperts(data->AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(data->Distance(result->best, data->MaxElement()),
            2.0 * delta_e + 1e-12);
}

TEST(IntegrationTest, DotsOnPlatformSimulatedExpertsSucceed) {
  // The DOTS experiment (Table 1): Algorithm 1 on the platform, with
  // "experts" simulated as majority-of-7 naive votes, finds the image
  // with the fewest dots.
  DotsDataset dots = DotsDataset::Standard();
  Result<DotsDataset> sampled = dots.Sample(50, /*seed=*/123);
  ASSERT_TRUE(sampled.ok());
  Instance instance = sampled->ToInstance();

  RelativeErrorComparator crowd_model(&instance, DotsWorkerModel(),
                                      /*seed=*/124);

  PlatformOptions platform_options;
  platform_options.num_workers = 60;
  platform_options.spammer_fraction = 0.1;
  platform_options.seed = 125;
  // Gold tasks: easy pairs (far-apart dot counts) with known ground truth,
  // so honest workers pass gold and spammers fail it.
  std::vector<ComparisonTask> gold_tasks;
  for (ElementId a = 0; a < 25; ++a) gold_tasks.push_back({a, a + 25});

  auto platform = CrowdPlatform::Create(&crowd_model, &instance, gold_tasks,
                                        platform_options);
  ASSERT_TRUE(platform.ok());

  PlatformComparator naive(platform->get(), /*votes_per_task=*/1);
  PlatformComparator simulated_expert(platform->get(), /*votes_per_task=*/7);

  ExpertMaxOptions options;
  options.filter.u_n = 5;  // The paper's choice for the real-data runs.
  Result<ExpertMaxResult> result = FindMaxWithExperts(
      instance.AllElements(), &naive, &simulated_expert, options);
  ASSERT_TRUE(result.ok());

  // DOTS is the wisdom-of-crowds regime: the result lands in the true
  // top-3 (the paper reports exact hits; we allow slack for spammers).
  EXPECT_LE(instance.Rank(result->best), 3);
}

TEST(IntegrationTest, CarsOnPlatformSimulatedExpertsPlateau) {
  // The CARS experiment (Table 2): simulated experts (7 naive votes)
  // cannot reliably identify the most expensive car, while a true expert
  // comparator can. Run several catalogs and compare hit rates.
  int simulated_hits = 0;
  int true_expert_hits = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t seed = 200 + static_cast<uint64_t>(t) * 17;
    CarsDataset cars = CarsDataset::Standard(seed);
    Result<CarsDataset> sampled = cars.Sample(50, seed + 1);
    ASSERT_TRUE(sampled.ok());
    Instance instance = sampled->ToInstance();

    PersistentBiasComparator crowd_model(&instance, CarsWorkerModel(),
                                         seed + 2);
    PlatformOptions platform_options;
    platform_options.num_workers = 40;
    platform_options.spammer_fraction = 0.0;
    platform_options.seed = seed + 3;
    auto platform =
        CrowdPlatform::Create(&crowd_model, &instance, {}, platform_options);
    ASSERT_TRUE(platform.ok());

    // Naive comparisons use majority-of-3 votes (replication damps the
    // 15% per-query slip rate on easy pairs); u_n = 10 reflects the ~10
    // cars within the crowd's 20% relative-difference blind spot.
    PlatformComparator naive(platform->get(), 3);
    PlatformComparator simulated_expert(platform->get(), 7);
    ExpertMaxOptions options;
    options.filter.u_n = 10;
    Result<ExpertMaxResult> with_simulated = FindMaxWithExperts(
        instance.AllElements(), &naive, &simulated_expert, options);
    ASSERT_TRUE(with_simulated.ok());
    if (with_simulated->best == instance.MaxElement()) ++simulated_hits;

    // Same phase-1 conditions but a real expert in phase 2.
    PlatformComparator naive2(platform->get(), 3);
    ThresholdComparator true_expert(&instance, ThresholdModel{400.0, 0.0},
                                    seed + 4);
    Result<ExpertMaxResult> with_true = FindMaxWithExperts(
        instance.AllElements(), &naive2, &true_expert, options);
    ASSERT_TRUE(with_true.ok());
    if (with_true->best == instance.MaxElement()) ++true_expert_hits;
  }
  // True experts dominate simulated ones in the CARS regime.
  EXPECT_GT(true_expert_hits, simulated_hits);
  EXPECT_GE(true_expert_hits, kTrials - 3);
}

TEST(IntegrationTest, SearchEvaluationScenario) {
  // Section 5.3: for both queries and u_n in {6, 8, 10}, the best result
  // must be promoted to round 2, and the experts must identify it.
  for (const char* query : {"asymmetric tsp best approximation",
                            "steiner tree best approximation"}) {
    Result<SearchQueryDataset> dataset =
        SearchQueryDataset::Generate(query, {}, /*seed=*/321);
    ASSERT_TRUE(dataset.ok());
    Instance instance = dataset->ToInstance();
    const double naive_delta = dataset->SuggestedNaiveDelta();

    for (int64_t u_n : {6, 8, 10}) {
      ThresholdComparator naive(&instance,
                                SearchNaiveWorkerModel(naive_delta),
                                /*seed=*/400 + static_cast<uint64_t>(u_n));
      ThresholdComparator expert(&instance, SearchExpertWorkerModel(),
                                 /*seed=*/500 + static_cast<uint64_t>(u_n));
      ExpertMaxOptions options;
      options.filter.u_n = u_n;
      Result<ExpertMaxResult> result = FindMaxWithExperts(
          instance.AllElements(), &naive, &expert, options);
      ASSERT_TRUE(result.ok());
      // The maximum was promoted to the second round...
      EXPECT_NE(std::find(result->candidates.begin(),
                          result->candidates.end(), instance.MaxElement()),
                result->candidates.end())
          << query << " u_n=" << u_n;
      // ...and the experts identified it.
      EXPECT_EQ(result->best, instance.MaxElement())
          << query << " u_n=" << u_n;
    }
  }
}

TEST(IntegrationTest, NaiveOnlySearchEvaluationIsUnreliable) {
  // Section 5.3's counterpart: naive-only 2-MaxFind finds the best result
  // in only a minority of runs.
  int hits = 0;
  constexpr int kRuns = 8;
  for (int r = 0; r < kRuns; ++r) {
    Result<SearchQueryDataset> dataset = SearchQueryDataset::Generate(
        "asymmetric tsp best approximation", {},
        /*seed=*/600 + static_cast<uint64_t>(r));
    ASSERT_TRUE(dataset.ok());
    Instance instance = dataset->ToInstance();
    ThresholdComparator naive(
        &instance, SearchNaiveWorkerModel(dataset->SuggestedNaiveDelta()),
        /*seed=*/700 + static_cast<uint64_t>(r));
    Result<SingleClassResult> result =
        TwoMaxFindNaiveOnly(instance.AllElements(), &naive);
    ASSERT_TRUE(result.ok());
    if (result->best == instance.MaxElement()) ++hits;
  }
  EXPECT_LT(hits, kRuns / 2 + 2);
}

}  // namespace
}  // namespace crowdmax
