// Tests for the batched (logical-step) execution of the algorithms:
// equivalence with the sequential versions under consistent answers, and
// the logical-step complexity (O(log n) for Algorithm 2, O(sqrt(s)) for
// 2-MaxFind).

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

TEST(BatchExecutorTest, CountsStepsAndComparisons) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);

  EXPECT_TRUE(executor.ExecuteBatch({}).empty());
  EXPECT_EQ(executor.logical_steps(), 0);  // Empty batch is free.

  std::vector<ElementId> winners = executor.ExecuteBatch({{0, 1}, {1, 2}});
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0], 1);
  EXPECT_EQ(winners[1], 2);
  EXPECT_EQ(executor.logical_steps(), 1);
  EXPECT_EQ(executor.comparisons(), 2);

  executor.ExecuteBatch({{0, 2}});
  EXPECT_EQ(executor.logical_steps(), 2);
  EXPECT_EQ(executor.comparisons(), 3);

  executor.ResetCounters();
  EXPECT_EQ(executor.logical_steps(), 0);
  EXPECT_EQ(executor.comparisons(), 0);
}

// The engine-backed batched tournament (the replacement for the removed
// BatchedAllPlayAll wrapper) matches the sequential tournament and costs
// one logical step.
TEST(BatchedAllPlayAllTest, MatchesSequentialTournament) {
  Result<Instance> instance = UniformInstance(20, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  ComparatorBatchExecutor executor(&oracle);

  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(&executor);
  ASSERT_TRUE(engine.ok());
  Result<TournamentEngineRun> batched =
      RunTournamentOnEngine(instance->AllElements(), engine->get());
  ASSERT_TRUE(batched.ok());
  OracleComparator oracle2(&*instance);
  const TournamentResult sequential =
      AllPlayAll(instance->AllElements(), &oracle2);

  EXPECT_EQ(batched->tournament.wins, sequential.wins);
  EXPECT_EQ(batched->tournament.comparisons, sequential.comparisons);
  EXPECT_EQ(batched->unresolved, 0);
  EXPECT_EQ(executor.logical_steps(), 1);  // One step for the whole round.
}

// Equivalence sweep: with per-pair persistent answers, batched and
// sequential Algorithm 2 produce identical candidate sets.
class BatchedFilterEquivalence
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {};

TEST_P(BatchedFilterEquivalence, MatchesSequentialFilter) {
  const auto [n, seed] = GetParam();
  Result<Instance> instance = UniformInstance(n, seed);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(8);
  const int64_t u_n = instance->CountWithin(delta);

  ThresholdComparator::Options worker;
  worker.model = ThresholdModel{delta, 0.0};
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  FilterOptions options;
  options.u_n = u_n;

  ThresholdComparator seq_worker(&*instance, worker, seed + 1);
  Result<FilterResult> sequential =
      FilterCandidates(instance->AllElements(), options, &seq_worker);
  ASSERT_TRUE(sequential.ok());

  ThresholdComparator batch_worker(&*instance, worker, seed + 1);
  ComparatorBatchExecutor executor(&batch_worker);
  Result<BatchedFilterResult> batched =
      BatchedFilterCandidates(instance->AllElements(), options, &executor);
  ASSERT_TRUE(batched.ok());

  EXPECT_EQ(batched->filter.candidates, sequential->candidates);
  EXPECT_EQ(batched->filter.rounds, sequential->rounds);
  EXPECT_EQ(batched->filter.paid_comparisons, sequential->paid_comparisons);
  // One logical step per round.
  EXPECT_EQ(batched->logical_steps, batched->filter.rounds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchedFilterEquivalence,
    ::testing::Combine(::testing::Values<int64_t>(100, 500, 2000),
                       ::testing::Values<uint64_t>(7, 8, 9)));

TEST(BatchedFilterTest, LogarithmicLogicalSteps) {
  for (int64_t n : {1000, 2000, 4000, 8000}) {
    Result<Instance> instance =
        UniformInstance(n, /*seed=*/static_cast<uint64_t>(n));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(5);
    ThresholdComparator worker(&*instance, ThresholdModel{delta, 0.0},
                               /*seed=*/1);
    ComparatorBatchExecutor executor(&worker);
    FilterOptions options;
    options.u_n = instance->CountWithin(delta);
    Result<BatchedFilterResult> result =
        BatchedFilterCandidates(instance->AllElements(), options, &executor);
    ASSERT_TRUE(result.ok());
    // i* <= log2(n) rounds (Lemma 3's proof).
    EXPECT_LE(result->logical_steps,
              static_cast<int64_t>(std::log2(static_cast<double>(n))) + 1);
  }
}

TEST(BatchedFilterTest, MemoizationSkipsRepeatedPairsAcrossRounds) {
  Result<Instance> instance = UniformInstance(800, /*seed=*/21);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(10);
  ThresholdComparator::Options worker;
  worker.model = ThresholdModel{delta, 0.0};
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  FilterOptions plain;
  plain.u_n = instance->CountWithin(delta);
  FilterOptions memoized = plain;
  memoized.memoize = true;

  ThresholdComparator worker_a(&*instance, worker, /*seed=*/22);
  ComparatorBatchExecutor exec_a(&worker_a);
  Result<BatchedFilterResult> r_plain =
      BatchedFilterCandidates(instance->AllElements(), plain, &exec_a);

  ThresholdComparator worker_b(&*instance, worker, /*seed=*/22);
  ComparatorBatchExecutor exec_b(&worker_b);
  Result<BatchedFilterResult> r_memo =
      BatchedFilterCandidates(instance->AllElements(), memoized, &exec_b);

  ASSERT_TRUE(r_plain.ok() && r_memo.ok());
  EXPECT_EQ(r_plain->filter.candidates, r_memo->filter.candidates);
  EXPECT_LE(r_memo->filter.paid_comparisons,
            r_plain->filter.paid_comparisons);
}

TEST(BatchedFilterTest, HonorsComparisonBudget) {
  Result<Instance> instance = UniformInstance(600, /*seed=*/91);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(8);
  ThresholdComparator worker(&*instance, ThresholdModel{delta, 0.0}, 92);
  ComparatorBatchExecutor executor(&worker);
  FilterOptions options;
  options.u_n = instance->CountWithin(delta);
  options.max_comparisons = 10000;
  Result<BatchedFilterResult> result =
      BatchedFilterCandidates(instance->AllElements(), options, &executor);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->filter.stopped_by_budget);
  EXPECT_LE(result->filter.paid_comparisons, 10000);
  // The maximum survives an early stop.
  bool found = false;
  for (ElementId e : result->filter.candidates) {
    found = found || e == instance->MaxElement();
  }
  EXPECT_TRUE(found);
}

TEST(BatchedTwoMaxFindTest, MatchesSequentialUnderConsistentAnswers) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    Result<Instance> instance = UniformInstance(150, seed);
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(10);
    ThresholdComparator::Options worker;
    worker.model = ThresholdModel{delta, 0.0};
    worker.tie_policy = TiePolicy::kPersistentArbitrary;

    ThresholdComparator seq_worker(&*instance, worker, seed + 1);
    Result<MaxFindResult> sequential =
        TwoMaxFind(instance->AllElements(), &seq_worker);

    ThresholdComparator batch_worker(&*instance, worker, seed + 1);
    ComparatorBatchExecutor executor(&batch_worker);
    Result<BatchedMaxFindResult> batched =
        BatchedTwoMaxFind(instance->AllElements(), &executor);

    ASSERT_TRUE(sequential.ok() && batched.ok());
    EXPECT_EQ(batched->maxfind.best, sequential->best);
    EXPECT_EQ(batched->maxfind.rounds, sequential->rounds);
    EXPECT_EQ(batched->maxfind.paid_comparisons,
              sequential->paid_comparisons);
  }
}

TEST(BatchedTwoMaxFindTest, SquareRootLogicalSteps) {
  for (int64_t s : {100, 400, 1600}) {
    Result<Instance> instance =
        UniformInstance(s, /*seed=*/static_cast<uint64_t>(s) + 41);
    ASSERT_TRUE(instance.ok());
    OracleComparator oracle(&*instance);
    ComparatorBatchExecutor executor(&oracle);
    Result<BatchedMaxFindResult> result =
        BatchedTwoMaxFind(instance->AllElements(), &executor);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->maxfind.best, instance->MaxElement());
    // At most 2 steps per round plus the final tournament; rounds are
    // O(sqrt(s)) with consistent answers.
    const int64_t sqrt_s = static_cast<int64_t>(
        std::ceil(std::sqrt(static_cast<double>(s))));
    EXPECT_LE(result->logical_steps, 2 * (2 * sqrt_s + 2) + 1)
        << "s=" << s;
  }
}

TEST(BatchedTwoMaxFindTest, SingletonNeedsNoSteps) {
  Instance instance({5.0});
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  Result<BatchedMaxFindResult> result = BatchedTwoMaxFind({0}, &executor);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->maxfind.best, 0);
  EXPECT_EQ(result->logical_steps, 0);
}

TEST(BatchedExpertMaxTest, EndToEndGuaranteeAndStepBudget) {
  Result<Instance> instance = UniformInstance(2000, /*seed=*/51);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(15);
  const double delta_e = instance->DeltaForU(4);
  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                            /*seed=*/52);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                             /*seed=*/53);
  ComparatorBatchExecutor naive_exec(&naive);
  ComparatorBatchExecutor expert_exec(&expert);

  ExpertMaxOptions options;
  options.filter.u_n = instance->CountWithin(delta_n);
  Result<BatchedExpertMaxResult> result = BatchedFindMaxWithExperts(
      instance->AllElements(), &naive_exec, &expert_exec, options);
  ASSERT_TRUE(result.ok());

  EXPECT_LE(instance->Distance(result->result.best, instance->MaxElement()),
            2.0 * delta_e + 1e-12);
  // Latency: logarithmic naive phase, sqrt-sized expert phase.
  EXPECT_LE(result->naive_steps, 12);
  EXPECT_LE(result->expert_steps, 2 * 7 + 3);
  // Cost matches the sequential bounds.
  EXPECT_LE(result->result.paid.naive, 4 * 2000 * options.filter.u_n);
}

TEST(BatchedExpertMaxTest, RunsOnTheCrowdPlatform) {
  Result<Instance> instance = UniformInstance(60, /*seed=*/61, 0.0, 100.0);
  ASSERT_TRUE(instance.ok());
  ThresholdComparator crowd(&*instance, ThresholdModel{2.0, 0.05},
                            /*seed=*/62);
  PlatformOptions platform_options;
  platform_options.num_workers = 30;
  platform_options.spammer_fraction = 0.0;
  platform_options.seed = 63;
  auto platform =
      CrowdPlatform::Create(&crowd, &*instance, {}, platform_options);
  ASSERT_TRUE(platform.ok());

  PlatformBatchExecutor naive_exec(platform->get(), /*votes_per_task=*/1);
  PlatformBatchExecutor expert_exec(platform->get(), /*votes_per_task=*/7);

  ExpertMaxOptions options;
  options.filter.u_n = 4;
  Result<BatchedExpertMaxResult> result = BatchedFindMaxWithExperts(
      instance->AllElements(), &naive_exec, &expert_exec, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(instance->Contains(result->result.best));
  // Platform logical steps equal executor batches exactly.
  EXPECT_EQ((*platform)->logical_steps(),
            result->naive_steps + result->expert_steps);
}

TEST(BatchedTopKTest, MatchesSequentialAndCountsSteps) {
  Result<Instance> instance = UniformInstance(600, /*seed=*/71);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(10);
  const double delta_e = instance->DeltaForU(2);

  TopKOptions options;
  options.k = 5;
  options.filter.u_n = instance->CountWithin(delta_n);

  ThresholdComparator::Options worker;
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  worker.model = ThresholdModel{delta_n, 0.0};
  ThresholdComparator naive_seq(&*instance, worker, /*seed=*/72);
  worker.model = ThresholdModel{delta_e, 0.0};
  ThresholdComparator expert_seq(&*instance, worker, /*seed=*/73);
  Result<TopKResult> sequential = FindTopKWithExperts(
      instance->AllElements(), &naive_seq, &expert_seq, options);
  ASSERT_TRUE(sequential.ok());

  worker.model = ThresholdModel{delta_n, 0.0};
  ThresholdComparator naive_cmp(&*instance, worker, /*seed=*/72);
  worker.model = ThresholdModel{delta_e, 0.0};
  ThresholdComparator expert_cmp(&*instance, worker, /*seed=*/73);
  ComparatorBatchExecutor naive_exec(&naive_cmp);
  ComparatorBatchExecutor expert_exec(&expert_cmp);
  Result<BatchedTopKResult> batched = BatchedFindTopKWithExperts(
      instance->AllElements(), &naive_exec, &expert_exec, options);
  ASSERT_TRUE(batched.ok());
  EXPECT_FALSE(batched->partial);

  EXPECT_EQ(batched->result.top, sequential->top);
  EXPECT_EQ(batched->result.candidates, sequential->candidates);
  EXPECT_EQ(batched->result.paid.naive, sequential->paid.naive);
  EXPECT_EQ(batched->result.paid.expert, sequential->paid.expert);
  EXPECT_EQ(batched->result.filter_rounds, sequential->filter_rounds);

  // Latency contract: one executor batch per filter round (logarithmic in
  // n), one batch for the whole expert tournament.
  EXPECT_EQ(batched->naive_steps, batched->result.filter_rounds);
  EXPECT_EQ(batched->naive_steps, naive_exec.logical_steps());
  EXPECT_LE(batched->naive_steps,
            static_cast<int64_t>(std::log2(600)) + 2);
  EXPECT_EQ(batched->expert_steps, 1);
  EXPECT_EQ(expert_exec.logical_steps(), 1);
}

TEST(BatchedMultilevelTest, MatchesSequentialAndCountsStepsPerClass) {
  Result<Instance> instance = UniformInstance(500, /*seed=*/81);
  ASSERT_TRUE(instance.ok());
  const double delta_naive = instance->DeltaForU(12);
  const double delta_expert = instance->DeltaForU(3);

  ThresholdComparator::Options worker;
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  auto make_classes = [&](ThresholdComparator* naive,
                          ThresholdComparator* expert) {
    return std::vector<WorkerClassSpec>{
        {naive, instance->CountWithin(delta_naive), 1.0},
        {expert, 1, 30.0}};
  };
  worker.model = ThresholdModel{delta_naive, 0.0};
  ThresholdComparator naive_seq(&*instance, worker, /*seed=*/82);
  worker.model = ThresholdModel{delta_expert, 0.0};
  ThresholdComparator expert_seq(&*instance, worker, /*seed=*/83);
  Result<MultilevelResult> sequential = FindMaxMultilevel(
      instance->AllElements(), make_classes(&naive_seq, &expert_seq),
      MultilevelOptions{});
  ASSERT_TRUE(sequential.ok());

  worker.model = ThresholdModel{delta_naive, 0.0};
  ThresholdComparator naive_cmp(&*instance, worker, /*seed=*/82);
  worker.model = ThresholdModel{delta_expert, 0.0};
  ThresholdComparator expert_cmp(&*instance, worker, /*seed=*/83);
  ComparatorBatchExecutor naive_exec(&naive_cmp);
  ComparatorBatchExecutor expert_exec(&expert_cmp);
  Result<BatchedMultilevelResult> batched = BatchedFindMaxMultilevel(
      instance->AllElements(),
      {{&naive_exec, instance->CountWithin(delta_naive), 1.0},
       {&expert_exec, 1, 30.0}},
      MultilevelOptions{});
  ASSERT_TRUE(batched.ok());
  EXPECT_FALSE(batched->partial);

  EXPECT_EQ(batched->result.best, sequential->best);
  EXPECT_EQ(batched->result.paid_per_class, sequential->paid_per_class);
  EXPECT_EQ(batched->result.candidates_per_level,
            sequential->candidates_per_level);
  EXPECT_EQ(batched->result.total_cost, sequential->total_cost);

  // Per-class latency: the filter level takes one batch per round
  // (logarithmic), the final 2-MaxFind level one batch per engine round.
  ASSERT_EQ(batched->steps_per_class.size(), 2u);
  EXPECT_EQ(batched->steps_per_class[0], naive_exec.logical_steps());
  EXPECT_EQ(batched->steps_per_class[1], expert_exec.logical_steps());
  EXPECT_GE(batched->steps_per_class[0], 1);
  EXPECT_LE(batched->steps_per_class[0],
            static_cast<int64_t>(std::log2(500)) + 2);
  EXPECT_GE(batched->steps_per_class[1], 1);
}

}  // namespace
}  // namespace crowdmax
