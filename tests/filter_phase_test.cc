// Tests for Phase 1 (Algorithm 2), centred on the Lemma 3 guarantees:
// the maximum survives, |S| <= 2*u_n - 1, and at most 4*n*u_n comparisons
// are issued — under exact, noisy, and adversarial below-threshold
// behaviour, with and without the Appendix-A optimizations.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

bool Contains(const std::vector<ElementId>& v, ElementId e) {
  return std::find(v.begin(), v.end(), e) != v.end();
}

TEST(FilterPhaseTest, RejectsInvalidOptions) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);

  FilterOptions bad_u;
  bad_u.u_n = 0;
  EXPECT_FALSE(FilterCandidates(instance.AllElements(), bad_u, &oracle).ok());

  FilterOptions bad_multiplier;
  bad_multiplier.u_n = 1;
  bad_multiplier.group_size_multiplier = 1;
  EXPECT_FALSE(
      FilterCandidates(instance.AllElements(), bad_multiplier, &oracle).ok());
}

TEST(FilterPhaseTest, RejectsDuplicateIds) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  FilterOptions options;
  options.u_n = 1;
  EXPECT_FALSE(FilterCandidates({0, 0}, options, &oracle).ok());
}

TEST(FilterPhaseTest, SmallInputPassesThroughUntouched) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  FilterOptions options;
  options.u_n = 2;  // 2*u_n = 4 > 3, loop never runs.
  Result<FilterResult> result =
      FilterCandidates(instance.AllElements(), options, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, instance.AllElements());
  EXPECT_EQ(result->paid_comparisons, 0);
  EXPECT_EQ(result->rounds, 0);
}

TEST(FilterPhaseTest, EmptyInputYieldsEmptyCandidates) {
  Instance instance({1.0});
  OracleComparator oracle(&instance);
  FilterOptions options;
  options.u_n = 1;
  Result<FilterResult> result = FilterCandidates({}, options, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->candidates.empty());
}

TEST(FilterPhaseTest, ExactComparatorKeepsTheMaximum) {
  Result<Instance> instance = UniformInstance(500, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  FilterOptions options;
  options.u_n = 5;
  Result<FilterResult> result =
      FilterCandidates(instance->AllElements(), options, &oracle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()));
  EXPECT_LE(static_cast<int64_t>(result->candidates.size()),
            2 * options.u_n - 1);
}

// Lemma 3 sweep over (n, u_n, seed) with the threshold model, fresh coin.
class Lemma3Sweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, uint64_t>> {
};

TEST_P(Lemma3Sweep, GuaranteesHoldUnderThresholdModel) {
  const auto [n, u_target, seed] = GetParam();
  Result<Instance> instance = UniformInstance(n, seed);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(u_target);
  const int64_t u_n = instance->CountWithin(delta);

  ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0}, seed + 1);
  FilterOptions options;
  options.u_n = u_n;
  Result<FilterResult> result =
      FilterCandidates(instance->AllElements(), options, &cmp);
  ASSERT_TRUE(result.ok());

  // (1) M in S.
  EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()));
  // (2) |S| <= 2*u_n - 1.
  EXPECT_LE(static_cast<int64_t>(result->candidates.size()), 2 * u_n - 1);
  // (3) comparisons <= 4*n*u_n.
  EXPECT_LE(result->paid_comparisons, FilterComparisonUpperBound(n, u_n));
  EXPECT_EQ(result->paid_comparisons, result->issued_comparisons);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma3Sweep,
    ::testing::Combine(::testing::Values<int64_t>(50, 200, 1000),
                       ::testing::Values<int64_t>(2, 5, 12),
                       ::testing::Values<uint64_t>(11, 22, 33)));

TEST(FilterPhaseTest, MaximumSurvivesAdversarialTies) {
  // Below-threshold answers chosen adversarially (lower value wins) cannot
  // evict the maximum: the guarantee is combinatorial (Lemma 1).
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Result<Instance> instance = UniformInstance(300, seed);
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(6);
    const int64_t u_n = instance->CountWithin(delta);
    AdversarialComparator cmp(&*instance, delta,
                              AdversarialPolicy::kLowerValueWins);
    FilterOptions options;
    options.u_n = u_n;
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), options, &cmp);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()));
    EXPECT_LE(static_cast<int64_t>(result->candidates.size()), 2 * u_n - 1);
  }
}

TEST(FilterPhaseTest, OverestimatingUnPreservesCorrectness) {
  Result<Instance> instance = UniformInstance(400, /*seed=*/9);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(4);
  ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0}, /*seed=*/10);
  FilterOptions options;
  options.u_n = 20;  // Overestimate (true value is ~4).
  Result<FilterResult> result =
      FilterCandidates(instance->AllElements(), options, &cmp);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()));
}

TEST(FilterPhaseTest, MemoizationNeverPaysForRepeatedPairs) {
  Result<Instance> instance = UniformInstance(600, /*seed=*/12);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(8);
  const int64_t u_n = instance->CountWithin(delta);

  ThresholdComparator::Options worker;
  worker.model = ThresholdModel{delta, 0.0};
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  FilterOptions plain;
  plain.u_n = u_n;
  FilterOptions memoized = plain;
  memoized.memoize = true;

  ThresholdComparator cmp_plain(&*instance, worker, /*seed=*/13);
  ThresholdComparator cmp_memo(&*instance, worker, /*seed=*/13);

  Result<FilterResult> r_plain =
      FilterCandidates(instance->AllElements(), plain, &cmp_plain);
  Result<FilterResult> r_memo =
      FilterCandidates(instance->AllElements(), memoized, &cmp_memo);
  ASSERT_TRUE(r_plain.ok());
  ASSERT_TRUE(r_memo.ok());

  // Same sticky answers => identical candidate sets, but the memoized run
  // pays at most as much and issues at least as much as it pays.
  EXPECT_EQ(r_plain->candidates, r_memo->candidates);
  EXPECT_LE(r_memo->paid_comparisons, r_plain->paid_comparisons);
  EXPECT_GE(r_memo->issued_comparisons, r_memo->paid_comparisons);
}

TEST(FilterPhaseTest, GlobalLossCounterOnlyRemovesNonMaxima) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    Result<Instance> instance = UniformInstance(800, seed);
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(10);
    const int64_t u_n = instance->CountWithin(delta);
    ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0}, seed + 1);

    FilterOptions options;
    options.u_n = u_n;
    options.global_loss_counter = true;
    options.memoize = true;
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), options, &cmp);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()));
    EXPECT_LE(static_cast<int64_t>(result->candidates.size()), 2 * u_n - 1);
  }
}

TEST(FilterPhaseTest, RoundSizesDecreaseGeometrically) {
  Result<Instance> instance = UniformInstance(2000, /*seed=*/31);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(5);
  ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0}, /*seed=*/32);
  FilterOptions options;
  options.u_n = instance->CountWithin(delta);
  Result<FilterResult> result =
      FilterCandidates(instance->AllElements(), options, &cmp);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rounds, 2);
  for (size_t i = 1; i < result->round_sizes.size(); ++i) {
    EXPECT_LT(result->round_sizes[i], result->round_sizes[i - 1]);
  }
  // Full groups shrink to at most (2*u_n - 1) / (4*u_n) < 1/2 per round.
  EXPECT_LE(result->round_sizes.back(), result->round_sizes.front());
}

TEST(FilterPhaseTest, LargerGroupMultiplierStillCorrect) {
  Result<Instance> instance = UniformInstance(500, /*seed=*/41);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(6);
  const int64_t u_n = instance->CountWithin(delta);
  for (int64_t multiplier : {2, 4, 8}) {
    ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.0},
                            /*seed=*/42);
    FilterOptions options;
    options.u_n = u_n;
    options.group_size_multiplier = multiplier;
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), options, &cmp);
    ASSERT_TRUE(result.ok()) << "multiplier=" << multiplier;
    EXPECT_TRUE(Contains(result->candidates, instance->MaxElement()))
        << "multiplier=" << multiplier;
    EXPECT_LE(static_cast<int64_t>(result->candidates.size()), 2 * u_n - 1);
  }
}

TEST(FilterPhaseTest, ResidualEpsilonRarelyDropsTheMaximum) {
  // With epsilon > 0 the guarantee is probabilistic; at epsilon = 0.02 and
  // u_n = 8 the maximum should survive in the overwhelming majority of
  // runs.
  int survived = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    Result<Instance> instance =
        UniformInstance(300, /*seed=*/100 + static_cast<uint64_t>(t));
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(8);
    ThresholdComparator cmp(&*instance, ThresholdModel{delta, 0.02},
                            /*seed=*/200 + static_cast<uint64_t>(t));
    FilterOptions options;
    options.u_n = instance->CountWithin(delta);
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), options, &cmp);
    ASSERT_TRUE(result.ok());
    if (Contains(result->candidates, instance->MaxElement())) ++survived;
  }
  EXPECT_GE(survived, kTrials - 4);
}

TEST(FilterPhaseTest, EmptyRoundDegradesGracefully) {
  // Packed instance + fair coin + u_n = 1: groups of 4 demand 3 wins to
  // survive, which a balanced coin round often denies to everyone. The
  // filter must never return an empty set for non-empty input.
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Result<Instance> packed = PackedInstance(64, seed);
    ASSERT_TRUE(packed.ok());
    ThresholdComparator coin(&*packed, ThresholdModel{1.0, 0.0}, seed + 100);
    FilterOptions options;
    options.u_n = 1;  // Severe underestimate: the true u is 64.
    Result<FilterResult> result =
        FilterCandidates(packed->AllElements(), options, &coin);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->candidates.empty());
    if (result->hit_empty_round) {
      // The pre-round set was preserved; it may exceed 2*u_n - 1.
      EXPECT_GE(static_cast<int64_t>(result->candidates.size()), 2);
    }
  }
}

TEST(FilterPhaseTest, ComparisonBudgetStopsEarlyAndKeepsTheMaximum) {
  Result<Instance> instance = UniformInstance(1000, /*seed=*/51);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(8);
  const int64_t u_n = instance->CountWithin(delta);

  // Unlimited run for reference.
  ThresholdComparator cmp_full(&*instance, ThresholdModel{delta, 0.0}, 52);
  FilterOptions unlimited;
  unlimited.u_n = u_n;
  Result<FilterResult> full =
      FilterCandidates(instance->AllElements(), unlimited, &cmp_full);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->stopped_by_budget);

  // Budget that affords the first round only.
  ThresholdComparator cmp_capped(&*instance, ThresholdModel{delta, 0.0}, 52);
  FilterOptions capped = unlimited;
  capped.max_comparisons = full->paid_comparisons / 2;
  Result<FilterResult> partial =
      FilterCandidates(instance->AllElements(), capped, &cmp_capped);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->stopped_by_budget);
  EXPECT_LE(partial->paid_comparisons, capped.max_comparisons);
  EXPECT_LT(partial->rounds, full->rounds);
  // Early stop keeps MORE candidates, never fewer — and M among them.
  EXPECT_GE(partial->candidates.size(), full->candidates.size());
  EXPECT_TRUE(Contains(partial->candidates, instance->MaxElement()));
}

TEST(FilterPhaseTest, BudgetTooSmallForAnyRoundReturnsInputUntouched) {
  Result<Instance> instance = UniformInstance(200, /*seed=*/61);
  ASSERT_TRUE(instance.ok());
  ThresholdComparator cmp(&*instance, ThresholdModel{0.01, 0.0}, 62);
  FilterOptions options;
  options.u_n = 5;
  options.max_comparisons = 3;  // Cannot afford any group tournament.
  Result<FilterResult> result =
      FilterCandidates(instance->AllElements(), options, &cmp);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stopped_by_budget);
  EXPECT_EQ(result->candidates, instance->AllElements());
  EXPECT_EQ(result->paid_comparisons, 0);
}

TEST(FilterPhaseTest, NegativeBudgetRejected) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  FilterOptions options;
  options.u_n = 1;
  options.max_comparisons = -1;
  EXPECT_FALSE(FilterCandidates({0, 1}, options, &oracle).ok());
}

TEST(FilterPhaseTest, UpperBoundHelper) {
  EXPECT_EQ(FilterComparisonUpperBound(1000, 10), 40000);
  EXPECT_EQ(FilterComparisonUpperBound(0, 10), 0);
}

}  // namespace
}  // namespace crowdmax
