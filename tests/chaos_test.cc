// The chaos contract: crash-safe checkpoint/resume at the engine layer and
// the ServiceSupervisor's protection mechanisms at the service layer.
//
// The engine suites are the kill-and-resume golden tests of the robustness
// milestone: a run is killed by an armed CheckpointController at a round
// boundary, a *fresh* stack (engine, source, comparators, executors) is
// rebuilt with the same construction parameters, and the resumed run must
// be bit-identical to an uninterrupted run — same answer, same paid /
// issued / cache-hit counters, same comparator spend, and the same trace
// cells (the crash run's cells plus the resume run's cells sum to the
// uninterrupted run's, because a crash splits span structure but never
// invents or loses a dispatched comparison).
//
// The supervisor suites pin the typed-error contract: shed, killed and
// breaker-rejected queries never hang and never return silent partial
// results — every one carries a typed kUnavailable/kAborted with a
// retry-after hint — and chaos-killed queries recover by deterministic
// re-execution to the exact uninterrupted outcome.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/async_executor.h"
#include "core/batched.h"
#include "core/checkpoint.h"
#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/resilient.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/trace.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "query/supervisor.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

std::vector<ElementId> AllItems(const Instance& instance) {
  std::vector<ElementId> items;
  for (int i = 0; i < instance.size(); ++i) items.push_back(i);
  return items;
}

using CellMap = std::map<TraceCellKey, TraceCellCounts>;

CellMap SumCells(const CellMap& a, const CellMap& b) {
  CellMap sum = a;
  for (const auto& [key, counts] : b) sum[key] += counts;
  return sum;
}

void ExpectCellsEqual(const CellMap& expected, const CellMap& actual,
                      const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  auto it = actual.begin();
  for (const auto& [key, counts] : expected) {
    ASSERT_TRUE(it->first == key) << label << " cell key mismatch";
    const TraceCellCounts& got = it->second;
    EXPECT_EQ(got.dispatched, counts.dispatched) << label;
    EXPECT_EQ(got.answered, counts.answered) << label;
    EXPECT_EQ(got.no_quorum, counts.no_quorum) << label;
    EXPECT_EQ(got.dropped, counts.dropped) << label;
    EXPECT_EQ(got.cache_hits, counts.cache_hits) << label;
    EXPECT_EQ(got.degraded, counts.degraded) << label;
    EXPECT_EQ(got.retries, counts.retries) << label;
    ++it;
  }
}

// --- engine-layer kill-and-resume goldens ---------------------------------

// One comparator-backed filter stack, rebuilt identically for the
// baseline, the crash run, and the resume run. threads == 0 is the serial
// engine; otherwise the parallel engine at that thread count (the
// acceptance matrix runs threads {1, 8}).
struct FilterStack {
  std::unique_ptr<ThresholdComparator> comparator;
  std::unique_ptr<RoundEngine> engine;
};

FilterStack MakeFilterStack(const Instance* instance, int64_t threads) {
  FilterStack stack;
  ThresholdComparator::Options options;
  options.model = ThresholdModel{0.05, 0.1};
  // The sticky per-pair answer table is part of the checkpoint; exercise it.
  options.tie_policy = TiePolicy::kPersistentArbitrary;
  stack.comparator = std::make_unique<ThresholdComparator>(
      instance, options, /*seed=*/1234);
  if (threads == 0) {
    stack.engine =
        RoundEngine::CreateSerial(stack.comparator.get(), /*memoize=*/true);
  } else {
    Result<std::unique_ptr<RoundEngine>> parallel = RoundEngine::CreateParallel(
        stack.comparator.get(), threads, /*seed=*/99, /*memoize=*/true);
    CROWDMAX_CHECK(parallel.ok());
    stack.engine = std::move(parallel).value();
  }
  return stack;
}

struct GoldenOutcome {
  FilterEngineRun run;
  int64_t paid = 0;
  int64_t issued = 0;
  int64_t cache_hits = 0;
  int64_t comparator_spend = 0;
  CellMap cells;
};

class FilterKillResumeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FilterKillResumeTest, ResumeIsBitIdenticalAtEveryBoundary) {
  const int64_t threads = GetParam();
  const Instance instance = MakeInstance(48, /*seed=*/21);
  const std::vector<ElementId> items = AllItems(instance);
  FilterOptions options;
  options.u_n = 2;
  options.memoize = true;
  options.global_loss_counter = true;

  // Uninterrupted baseline.
  GoldenOutcome baseline;
  {
    FilterStack stack = MakeFilterStack(&instance, threads);
    AlgoTrace trace;
    ScopedTrace scoped(&trace);
    Result<FilterEngineRun> run =
        RunFilterOnEngine(items, options, stack.engine.get());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    baseline.run = *run;
    baseline.paid = stack.engine->paid();
    baseline.issued = stack.engine->issued();
    baseline.cache_hits = stack.engine->cache_hits();
    baseline.comparator_spend = stack.comparator->num_comparisons();
    baseline.cells = trace.cells();
  }
  ASSERT_GE(baseline.run.filter.rounds, 2)
      << "instance too small to exercise mid-run boundaries";

  // Kill at every eligible round boundary in turn, then resume a fresh
  // stack from the snapshot; each resumed run must match the baseline
  // bit for bit.
  for (int64_t boundary = 1; boundary < baseline.run.filter.rounds;
       ++boundary) {
    SCOPED_TRACE("threads=" + std::to_string(threads) +
                 " crash_boundary=" + std::to_string(boundary));

    std::string snapshot;
    CellMap crash_cells;
    {
      FilterStack stack = MakeFilterStack(&instance, threads);
      CheckpointController controller;
      controller.ArmCrashAtBoundary(boundary);
      stack.engine->set_checkpoint(&controller);
      AlgoTrace trace;
      ScopedTrace scoped(&trace);
      Result<FilterEngineRun> crashed =
          RunFilterOnEngine(items, options, stack.engine.get());
      ASSERT_FALSE(crashed.ok());
      EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
      ASSERT_TRUE(controller.has_checkpoint());
      EXPECT_TRUE(controller.crashed());
      snapshot = controller.checkpoint();
      crash_cells = trace.cells();
    }

    FilterStack stack = MakeFilterStack(&instance, threads);
    CheckpointController controller;
    controller.ResumeFrom(snapshot);
    stack.engine->set_checkpoint(&controller);
    AlgoTrace trace;
    ScopedTrace scoped(&trace);
    Result<FilterEngineRun> resumed =
        RunFilterOnEngine(items, options, stack.engine.get());
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(controller.restores(), 1);

    EXPECT_EQ(resumed->filter.candidates, baseline.run.filter.candidates);
    EXPECT_EQ(resumed->filter.paid_comparisons,
              baseline.run.filter.paid_comparisons);
    EXPECT_EQ(resumed->filter.issued_comparisons,
              baseline.run.filter.issued_comparisons);
    EXPECT_EQ(resumed->filter.rounds, baseline.run.filter.rounds);
    EXPECT_EQ(resumed->filter.round_sizes, baseline.run.filter.round_sizes);
    EXPECT_EQ(resumed->filter.evicted_by_loss_counter,
              baseline.run.filter.evicted_by_loss_counter);
    EXPECT_EQ(stack.engine->paid(), baseline.paid);
    EXPECT_EQ(stack.engine->issued(), baseline.issued);
    EXPECT_EQ(stack.engine->cache_hits(), baseline.cache_hits);
    EXPECT_EQ(stack.comparator->num_comparisons(),
              baseline.comparator_spend);
    // A crash splits the trace's span structure but conserves its cells:
    // crash-run cells + resume-run cells == uninterrupted cells.
    ExpectCellsEqual(baseline.cells, SumCells(crash_cells, trace.cells()),
                     "summed cells");
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FilterKillResumeTest,
                         ::testing::Values<int64_t>(0, 1, 8));

TEST(ChaosEngineTest, TwoMaxFindKillAndResume) {
  const Instance instance = MakeInstance(40, /*seed=*/31);
  const std::vector<ElementId> items = AllItems(instance);
  auto make_stack = [&instance] {
    FilterStack stack;
    stack.comparator = std::make_unique<ThresholdComparator>(
        &instance, ThresholdModel{0.05, 0.1}, /*seed=*/77);
    stack.engine =
        RoundEngine::CreateSerial(stack.comparator.get(), /*memoize=*/true);
    return stack;
  };

  FilterStack baseline_stack = make_stack();
  Result<MaxFindEngineRun> baseline =
      RunTwoMaxFindOnEngine(items, baseline_stack.engine.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FilterStack crash_stack = make_stack();
  CheckpointController crash_controller;
  crash_controller.ArmCrashAtBoundary(2);
  crash_stack.engine->set_checkpoint(&crash_controller);
  Result<MaxFindEngineRun> crashed =
      RunTwoMaxFindOnEngine(items, crash_stack.engine.get());
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(crash_controller.has_checkpoint());

  FilterStack resume_stack = make_stack();
  CheckpointController resume_controller;
  resume_controller.ResumeFrom(crash_controller.checkpoint());
  resume_stack.engine->set_checkpoint(&resume_controller);
  Result<MaxFindEngineRun> resumed =
      RunTwoMaxFindOnEngine(items, resume_stack.engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->maxfind.best, baseline->maxfind.best);
  EXPECT_EQ(resumed->maxfind.paid_comparisons,
            baseline->maxfind.paid_comparisons);
  EXPECT_EQ(resumed->maxfind.issued_comparisons,
            baseline->maxfind.issued_comparisons);
  EXPECT_EQ(resumed->maxfind.rounds, baseline->maxfind.rounds);
  EXPECT_EQ(resume_stack.comparator->num_comparisons(),
            baseline_stack.comparator->num_comparisons());
}

TEST(ChaosEngineTest, RandomizedMaxFindKillAndResume) {
  const Instance instance = MakeInstance(60, /*seed=*/41);
  const std::vector<ElementId> items = AllItems(instance);
  RandomizedMaxFindOptions rand_options;
  rand_options.seed = 9;
  rand_options.group_size_override = 8;
  auto make_stack = [&instance] {
    FilterStack stack;
    stack.comparator = std::make_unique<ThresholdComparator>(
        &instance, ThresholdModel{0.05, 0.1}, /*seed=*/55);
    stack.engine =
        RoundEngine::CreateSerial(stack.comparator.get(), /*memoize=*/true);
    return stack;
  };

  FilterStack baseline_stack = make_stack();
  Result<MaxFindEngineRun> baseline = RunRandomizedMaxFindOnEngine(
      items, baseline_stack.engine.get(), rand_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  FilterStack crash_stack = make_stack();
  CheckpointController crash_controller;
  crash_controller.ArmCrashAtBoundary(1);
  crash_stack.engine->set_checkpoint(&crash_controller);
  Result<MaxFindEngineRun> crashed = RunRandomizedMaxFindOnEngine(
      items, crash_stack.engine.get(), rand_options);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(crash_controller.has_checkpoint());

  // The source's own sampling RNG position is part of the checkpoint; the
  // resumed run must replay the identical partitions.
  FilterStack resume_stack = make_stack();
  CheckpointController resume_controller;
  resume_controller.ResumeFrom(crash_controller.checkpoint());
  resume_stack.engine->set_checkpoint(&resume_controller);
  Result<MaxFindEngineRun> resumed = RunRandomizedMaxFindOnEngine(
      items, resume_stack.engine.get(), rand_options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->maxfind.best, baseline->maxfind.best);
  EXPECT_EQ(resumed->maxfind.paid_comparisons,
            baseline->maxfind.paid_comparisons);
  EXPECT_EQ(resumed->maxfind.issued_comparisons,
            baseline->maxfind.issued_comparisons);
  EXPECT_EQ(resumed->maxfind.rounds, baseline->maxfind.rounds);
  EXPECT_EQ(resume_stack.comparator->num_comparisons(),
            baseline_stack.comparator->num_comparisons());
}

TEST(ChaosEngineTest, TournamentCrashAfterOnlyRoundResumesToResult) {
  const Instance instance = MakeInstance(12, /*seed=*/3);
  const std::vector<ElementId> items = AllItems(instance);
  auto make_stack = [&instance] {
    FilterStack stack;
    stack.comparator = std::make_unique<ThresholdComparator>(
        &instance, ThresholdModel{0.05, 0.1}, /*seed=*/17);
    stack.engine =
        RoundEngine::CreateSerial(stack.comparator.get(), /*memoize=*/true);
    return stack;
  };

  FilterStack baseline_stack = make_stack();
  Result<TournamentEngineRun> baseline =
      RunTournamentOnEngine(items, baseline_stack.engine.get());
  ASSERT_TRUE(baseline.ok());

  FilterStack crash_stack = make_stack();
  CheckpointController crash_controller;
  crash_controller.ArmCrashAtBoundary(1);
  crash_stack.engine->set_checkpoint(&crash_controller);
  Result<TournamentEngineRun> crashed =
      RunTournamentOnEngine(items, crash_stack.engine.get());
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);

  // The crash landed after the tournament's only round: the resumed drive
  // replays zero rounds and still reports the full tally.
  FilterStack resume_stack = make_stack();
  CheckpointController resume_controller;
  resume_controller.ResumeFrom(crash_controller.checkpoint());
  resume_stack.engine->set_checkpoint(&resume_controller);
  Result<TournamentEngineRun> resumed =
      RunTournamentOnEngine(items, resume_stack.engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->tournament.wins, baseline->tournament.wins);
  EXPECT_EQ(resumed->tournament.comparisons, baseline->tournament.comparisons);
  EXPECT_EQ(resume_stack.comparator->num_comparisons(),
            baseline_stack.comparator->num_comparisons());
}

// The full faulty executor stack — injector over a comparator executor,
// wrapped resilient — checkpoints every layer (injection RNG position,
// retry report, counters), so a resumed faulty run replays the identical
// fault pattern.
TEST(ChaosEngineTest, FaultyExecutorStackKillAndResume) {
  const Instance instance = MakeInstance(36, /*seed=*/13);
  const std::vector<ElementId> items = AllItems(instance);
  FilterOptions options;
  options.u_n = 2;
  options.memoize = true;

  struct ExecutorStack {
    std::unique_ptr<OracleComparator> comparator;
    std::unique_ptr<ComparatorBatchExecutor> inner;
    std::unique_ptr<FaultInjectingBatchExecutor> faulty;
    std::unique_ptr<ResilientBatchExecutor> resilient;
    std::unique_ptr<RoundEngine> engine;
  };
  auto make_stack = [&instance] {
    ExecutorStack stack;
    stack.comparator = std::make_unique<OracleComparator>(&instance);
    stack.inner =
        std::make_unique<ComparatorBatchExecutor>(stack.comparator.get());
    InjectedFaultOptions faults;
    faults.drop_probability = 0.1;
    faults.no_quorum_probability = 0.1;
    faults.seed = 2024;
    Result<std::unique_ptr<FaultInjectingBatchExecutor>> faulty =
        FaultInjectingBatchExecutor::Create(stack.inner.get(), faults);
    CROWDMAX_CHECK(faulty.ok());
    stack.faulty = std::move(faulty).value();
    ResilientOptions recovery;
    recovery.max_retries = 4;
    Result<std::unique_ptr<ResilientBatchExecutor>> resilient =
        ResilientBatchExecutor::Create(stack.faulty.get(), recovery);
    CROWDMAX_CHECK(resilient.ok());
    stack.resilient = std::move(resilient).value();
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreateBatched(stack.resilient.get());
    CROWDMAX_CHECK(engine.ok());
    stack.engine = std::move(engine).value();
    return stack;
  };

  ExecutorStack baseline_stack = make_stack();
  Result<FilterEngineRun> baseline =
      RunFilterOnEngine(items, options, baseline_stack.engine.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GE(baseline->filter.rounds, 2);

  ExecutorStack crash_stack = make_stack();
  CheckpointController crash_controller;
  crash_controller.ArmCrashAtBoundary(2);
  crash_stack.engine->set_checkpoint(&crash_controller);
  Result<FilterEngineRun> crashed =
      RunFilterOnEngine(items, options, crash_stack.engine.get());
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(crash_controller.has_checkpoint());

  ExecutorStack resume_stack = make_stack();
  CheckpointController resume_controller;
  resume_controller.ResumeFrom(crash_controller.checkpoint());
  resume_stack.engine->set_checkpoint(&resume_controller);
  Result<FilterEngineRun> resumed =
      RunFilterOnEngine(items, options, resume_stack.engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->filter.candidates, baseline->filter.candidates);
  EXPECT_EQ(resumed->filter.paid_comparisons,
            baseline->filter.paid_comparisons);
  EXPECT_EQ(resumed->filter.issued_comparisons,
            baseline->filter.issued_comparisons);
  EXPECT_EQ(resumed->partial, baseline->partial);
  EXPECT_EQ(resume_stack.resilient->comparisons(),
            baseline_stack.resilient->comparisons());
  // Injection counters are restored absolutely, so the resumed stack ends
  // at the uninterrupted totals.
  EXPECT_EQ(resume_stack.faulty->injected_drops(),
            baseline_stack.faulty->injected_drops());
  EXPECT_EQ(resume_stack.faulty->injected_no_quorums(),
            baseline_stack.faulty->injected_no_quorums());
}

// The pipelined drive checkpoints only at drained boundaries (no round in
// flight), so its resumed runs replay the same overlap pattern.
TEST(ChaosEngineTest, PipelinedDriveKillAndResume) {
  const Instance instance = MakeInstance(48, /*seed=*/19);
  const std::vector<ElementId> items = AllItems(instance);
  FilterOptions options;
  options.u_n = 2;
  options.memoize = true;
  options.pipeline_groups = true;

  struct PipelinedStack {
    std::unique_ptr<OracleComparator> comparator;
    std::unique_ptr<ComparatorBatchExecutor> executor;
    std::unique_ptr<AsyncBatchAdapter> async;
    std::unique_ptr<RoundEngine> engine;
  };
  auto make_stack = [&instance] {
    PipelinedStack stack;
    stack.comparator = std::make_unique<OracleComparator>(&instance);
    stack.executor =
        std::make_unique<ComparatorBatchExecutor>(stack.comparator.get());
    stack.async = std::make_unique<AsyncBatchAdapter>(stack.executor.get());
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreatePipelined(stack.async.get(), /*max_in_flight=*/3);
    CROWDMAX_CHECK(engine.ok());
    stack.engine = std::move(engine).value();
    return stack;
  };

  PipelinedStack baseline_stack = make_stack();
  Result<FilterEngineRun> baseline =
      RunFilterOnEngine(items, options, baseline_stack.engine.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  PipelinedStack crash_stack = make_stack();
  CheckpointController crash_controller;
  crash_controller.ArmCrashAtBoundary(1);
  crash_stack.engine->set_checkpoint(&crash_controller);
  Result<FilterEngineRun> crashed =
      RunFilterOnEngine(items, options, crash_stack.engine.get());
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kAborted);
  ASSERT_TRUE(crash_controller.has_checkpoint());

  PipelinedStack resume_stack = make_stack();
  CheckpointController resume_controller;
  resume_controller.ResumeFrom(crash_controller.checkpoint());
  resume_stack.engine->set_checkpoint(&resume_controller);
  Result<FilterEngineRun> resumed =
      RunFilterOnEngine(items, options, resume_stack.engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->filter.candidates, baseline->filter.candidates);
  EXPECT_EQ(resumed->filter.paid_comparisons,
            baseline->filter.paid_comparisons);
  EXPECT_EQ(resumed->filter.issued_comparisons,
            baseline->filter.issued_comparisons);
  EXPECT_EQ(resume_stack.comparator->num_comparisons(),
            baseline_stack.comparator->num_comparisons());
}

// Snapshot cadence on a healthy run: snapshots fire every n-th boundary
// and resuming from the final snapshot completes with the same answer.
TEST(ChaosEngineTest, CadenceSnapshotsSupportLateResume) {
  const Instance instance = MakeInstance(48, /*seed=*/23);
  const std::vector<ElementId> items = AllItems(instance);
  FilterOptions options;
  options.u_n = 2;
  options.memoize = true;

  FilterStack baseline_stack = MakeFilterStack(&instance, 0);
  CheckpointController cadence;
  cadence.set_snapshot_every_rounds(2);
  baseline_stack.engine->set_checkpoint(&cadence);
  Result<FilterEngineRun> baseline =
      RunFilterOnEngine(items, options, baseline_stack.engine.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GE(cadence.boundaries_seen(), 2);
  EXPECT_EQ(cadence.snapshots_taken(), cadence.boundaries_seen() / 2);
  ASSERT_TRUE(cadence.has_checkpoint());

  FilterStack resume_stack = MakeFilterStack(&instance, 0);
  CheckpointController controller;
  controller.ResumeFrom(cadence.checkpoint());
  resume_stack.engine->set_checkpoint(&controller);
  Result<FilterEngineRun> resumed =
      RunFilterOnEngine(items, options, resume_stack.engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->filter.candidates, baseline->filter.candidates);
  EXPECT_EQ(resumed->filter.paid_comparisons,
            baseline->filter.paid_comparisons);
}

// --- supervisor: chaos kills, shedding, breakers, degradation -------------

struct SupervisorRig {
  Instance instance;
  SupervisorOptions options;
};

SupervisorRig MakeSupervisorRig() {
  SupervisorRig rig{MakeInstance(30, /*seed=*/5), SupervisorOptions()};
  ServiceShard shard;
  shard.instance = &rig.instance;
  shard.delta_naive = 0.1;
  rig.options.service.shards.push_back(shard);
  rig.options.service.use_platform = true;
  rig.options.service.platform_workers = 20;
  rig.options.service.naive_votes = 3;
  rig.options.service.expert_votes = 3;
  return rig;
}

QuerySpec MakeMaxSpec(const std::string& tenant, uint64_t seed) {
  QuerySpec spec;
  spec.tenant = tenant;
  spec.kind = QueryKind::kMax;
  spec.u_n = 2;
  spec.seed = seed;
  return spec;
}

TEST(ChaosSupervisorTest, KilledQueriesRecoverToUninterruptedOutcome) {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.chaos.seed = 404;
  rig.options.chaos.kill_query_probability = 1.0;
  // Kill at the first grant boundary: every kMax query needs at least two
  // batch submissions (a filter round plus phase 2), so the kill always
  // lands mid-run.
  rig.options.chaos.min_kill_step = 1;
  rig.options.chaos.max_kill_step = 1;
  rig.options.chaos.max_restarts = 1;

  std::vector<QuerySpec> specs = {MakeMaxSpec("alpha", 11),
                                  MakeMaxSpec("beta", 22),
                                  MakeMaxSpec("gamma", 33)};

  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok()) << supervisor.status().ToString();
  Result<SupervisedRunResult> run = supervisor->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->report.submitted, 3);
  EXPECT_EQ(run->report.killed, 3);
  EXPECT_EQ(run->report.recovered, 3);
  EXPECT_EQ(run->report.unrecovered, 0);
  EXPECT_EQ(run->report.completed, 3);

  for (size_t i = 0; i < specs.size(); ++i) {
    const SupervisedOutcome& sup = run->outcomes[i];
    EXPECT_EQ(sup.kills, 1);
    EXPECT_EQ(sup.restarts, 1);
    ASSERT_TRUE(sup.outcome.status.ok()) << sup.outcome.status.ToString();

    // The recovered outcome is the uninterrupted outcome, bit for bit:
    // re-execution replays the hermetically seeded tenant stack.
    Result<QueryOutcome> alone =
        QueryService::ExecuteAlone(rig.options.service, specs[i]);
    ASSERT_TRUE(alone.ok());
    EXPECT_EQ(sup.outcome.best, alone->best);
    EXPECT_EQ(sup.outcome.paid.naive, alone->paid.naive);
    EXPECT_EQ(sup.outcome.paid.expert, alone->paid.expert);
    EXPECT_EQ(sup.outcome.cache_hits, alone->cache_hits);
    EXPECT_EQ(sup.outcome.partial, alone->partial);
  }
}

TEST(ChaosSupervisorTest, ZeroRestartsLeaveTypedAbort) {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.chaos.seed = 7;
  rig.options.chaos.kill_query_probability = 1.0;
  rig.options.chaos.min_kill_step = 1;
  rig.options.chaos.max_kill_step = 1;
  rig.options.chaos.max_restarts = 0;

  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok());
  Result<SupervisedRunResult> run =
      supervisor->Run({MakeMaxSpec("alpha", 11)});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->report.killed, 1);
  EXPECT_EQ(run->report.unrecovered, 1);
  EXPECT_EQ(run->report.completed, 0);
  const SupervisedOutcome& sup = run->outcomes[0];
  // Never silent: the kill is a typed kAborted with a retry hint, and the
  // true spend of the aborted attempt is still reported.
  EXPECT_EQ(sup.outcome.status.code(), StatusCode::kAborted);
  EXPECT_GT(sup.outcome.status.retry_after_steps(), 0);
  EXPECT_TRUE(sup.outcome.admitted);
  EXPECT_GT(sup.outcome.paid.naive, 0);
}

TEST(ChaosSupervisorTest, OutageWindowShedsWithCountdownHints) {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.chaos.outage_start = 1;
  rig.options.chaos.outage_queries = 2;

  std::vector<QuerySpec> specs = {
      MakeMaxSpec("a", 1), MakeMaxSpec("b", 2), MakeMaxSpec("c", 3),
      MakeMaxSpec("d", 4)};
  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok());
  Result<SupervisedRunResult> run = supervisor->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->report.shed_outage, 2);
  EXPECT_EQ(run->report.executed, 2);
  EXPECT_TRUE(run->outcomes[0].outcome.status.ok());
  EXPECT_TRUE(run->outcomes[3].outcome.status.ok());
  // The retry hint counts down to the end of the outage window.
  for (size_t i : {size_t{1}, size_t{2}}) {
    const SupervisedOutcome& sup = run->outcomes[i];
    EXPECT_TRUE(sup.shed_load);
    EXPECT_EQ(sup.outcome.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(sup.outcome.status.retry_after_steps(),
              static_cast<int64_t>(3 - i));
    EXPECT_FALSE(sup.outcome.admitted);
  }
}

TEST(ChaosSupervisorTest, WatermarkShedsLowestWeightFirst) {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.shed.max_admitted = 2;
  rig.options.shed.retry_after_steps = 4;

  std::vector<QuerySpec> specs = {
      MakeMaxSpec("heavy", 1), MakeMaxSpec("light-early", 2),
      MakeMaxSpec("mid", 3), MakeMaxSpec("light-late", 4)};
  specs[0].weight = 5;
  specs[1].weight = 1;
  specs[2].weight = 3;
  specs[3].weight = 1;

  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok());
  Result<SupervisedRunResult> run = supervisor->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Lowest weight first; among equal weights the later submission sheds
  // first — so both weight-1 tenants shed and the heavy tenants run.
  EXPECT_EQ(run->report.shed_load, 2);
  EXPECT_TRUE(run->outcomes[0].outcome.status.ok());
  EXPECT_TRUE(run->outcomes[2].outcome.status.ok());
  for (size_t i : {size_t{1}, size_t{3}}) {
    const SupervisedOutcome& sup = run->outcomes[i];
    EXPECT_TRUE(sup.shed_load);
    EXPECT_EQ(sup.outcome.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(sup.outcome.status.retry_after_steps(), 4);
  }
}

// A shard whose crowd is down hard: nearly every submission fails (the
// platform caps the probability below 1), the resilient layer exhausts
// its budget, and the query surfaces kUnavailable — the breaker's failure
// signal. The pattern is deterministic for the fixed tenant seeds.
SupervisorRig MakeDownShardRig() {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.service.fault.unavailable_probability = 0.999;
  rig.options.service.resilient.max_retries = 1;
  return rig;
}

TEST(ChaosSupervisorTest, BreakerTripsShedsAndProbeFailureReopens) {
  SupervisorRig rig = MakeDownShardRig();
  rig.options.breaker.failure_threshold = 2;
  rig.options.breaker.cooldown_queries = 2;
  rig.options.breaker.retry_after_steps = 8;

  std::vector<QuerySpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(MakeMaxSpec("t" + std::to_string(i), 100 + i));
  }
  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok());
  Result<SupervisedRunResult> run = supervisor->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // q0, q1 fail -> trip. q2, q3 shed through the cooldown. q4 probes
  // half-open, fails, re-opens. q5 sheds again.
  EXPECT_EQ(run->report.breaker_trips, 2);
  EXPECT_EQ(run->report.breaker_probes, 1);
  EXPECT_EQ(run->report.breaker_closes, 0);
  EXPECT_EQ(run->report.shed_breaker, 3);
  EXPECT_EQ(supervisor->breaker_state(0), BreakerState::kOpen);
  for (size_t i : {size_t{2}, size_t{3}, size_t{5}}) {
    const SupervisedOutcome& sup = run->outcomes[i];
    EXPECT_TRUE(sup.shed_breaker);
    EXPECT_EQ(sup.outcome.status.code(), StatusCode::kUnavailable);
    EXPECT_EQ(sup.outcome.status.retry_after_steps(), 8);
  }
  EXPECT_TRUE(run->outcomes[4].probe);
}

TEST(ChaosSupervisorTest, DegradedProbeClosesBreaker) {
  SupervisorRig rig = MakeDownShardRig();
  rig.options.breaker.failure_threshold = 2;
  rig.options.breaker.cooldown_queries = 2;
  // Graceful degradation: while the breaker is not closed, queries run
  // under a relaxed policy whose deterministic fallback always resolves —
  // so the half-open probe succeeds and the breaker closes.
  rig.options.degrade.enabled = true;
  rig.options.degrade.degraded.max_retries = 0;
  rig.options.degrade.degraded.fallback = SmallerIdFallback;

  std::vector<QuerySpec> specs;
  for (int i = 0; i < 5; ++i) {
    specs.push_back(MakeMaxSpec("t" + std::to_string(i), 200 + i));
  }
  Result<ServiceSupervisor> supervisor =
      ServiceSupervisor::Create(rig.options);
  ASSERT_TRUE(supervisor.ok());
  Result<SupervisedRunResult> run = supervisor->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // q0, q1 fail -> trip. q2, q3 shed. q4 probes degraded, succeeds,
  // closes the breaker.
  EXPECT_EQ(run->report.breaker_trips, 1);
  EXPECT_EQ(run->report.breaker_probes, 1);
  EXPECT_EQ(run->report.breaker_closes, 1);
  EXPECT_EQ(run->report.shed_breaker, 2);
  EXPECT_EQ(run->report.degraded_runs, 1);
  EXPECT_EQ(supervisor->breaker_state(0), BreakerState::kClosed);
  const SupervisedOutcome& probe = run->outcomes[4];
  EXPECT_TRUE(probe.probe);
  EXPECT_TRUE(probe.degraded);
  EXPECT_TRUE(probe.outcome.status.ok()) << probe.outcome.status.ToString();
  EXPECT_GE(probe.outcome.best, 0);
}

TEST(ChaosSupervisorTest, RunsAreReplayable) {
  SupervisorRig rig = MakeSupervisorRig();
  rig.options.chaos.seed = 99;
  rig.options.chaos.kill_query_probability = 0.5;
  rig.options.chaos.min_kill_step = 1;
  rig.options.chaos.max_kill_step = 3;
  rig.options.shed.max_admitted = 3;

  std::vector<QuerySpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(MakeMaxSpec("t" + std::to_string(i), 300 + i));
    specs.back().weight = 1 + i % 2;
  }

  auto run_once = [&rig, &specs] {
    Result<ServiceSupervisor> supervisor =
        ServiceSupervisor::Create(rig.options);
    CROWDMAX_CHECK(supervisor.ok());
    Result<SupervisedRunResult> run = supervisor->Run(specs);
    CROWDMAX_CHECK(run.ok());
    return std::move(run).value();
  };
  const SupervisedRunResult first = run_once();
  const SupervisedRunResult second = run_once();

  EXPECT_EQ(first.report.killed, second.report.killed);
  EXPECT_EQ(first.report.recovered, second.report.recovered);
  EXPECT_EQ(first.report.shed_load, second.report.shed_load);
  EXPECT_EQ(first.report.completed, second.report.completed);
  ASSERT_EQ(first.outcomes.size(), second.outcomes.size());
  for (size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].outcome.status.code(),
              second.outcomes[i].outcome.status.code());
    EXPECT_EQ(first.outcomes[i].outcome.best, second.outcomes[i].outcome.best);
    EXPECT_EQ(first.outcomes[i].outcome.paid.naive,
              second.outcomes[i].outcome.paid.naive);
    EXPECT_EQ(first.outcomes[i].kills, second.outcomes[i].kills);
  }
}

}  // namespace
}  // namespace crowdmax
