// The RoundEngine contract (core/round_engine.h): one execution core
// behind every algorithm. These suites pin
//  * cross-backend equivalence — the serial engine, the parallel engine at
//    threads {2, 8}, and the executor-backed engine produce identical
//    results for every ported RoundSource when worker answers are
//    deterministic (the backends may only differ through RNG draw order,
//    which an oracle never consumes);
//  * the single budget enforcement point — serial and batched runs charge
//    identically around the FilterOptions::max_comparisons boundary, even
//    when memoization makes a re-grouped pair free while the worst-case
//    round gate still counts it;
//  * the engine-owned counters (paid / issued / cache_hits /
//    logical_steps) and the backend guard rails (Fork probing,
//    SupportsPartialEvidence).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/async_executor.h"
#include "core/batched.h"
#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/resilient.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

class UnforkableComparator : public Comparator {
 public:
  explicit UnforkableComparator(const Instance* instance)
      : instance_(instance) {}

 private:
  ElementId DoCompare(ElementId a, ElementId b) override {
    return instance_->value(a) >= instance_->value(b) ? a : b;
  }
  const Instance* instance_;
};

// Builds every backend over its own oracle comparator/executor so counters
// are per-run. Index 0 = serial, 1..2 = parallel {2, 8}, 3 = executor.
struct BackendRig {
  std::vector<std::unique_ptr<OracleComparator>> comparators;
  std::vector<std::unique_ptr<ComparatorBatchExecutor>> executors;
  std::vector<std::unique_ptr<RoundEngine>> engines;
  std::vector<std::string> names;
};

BackendRig MakeAllBackends(const Instance& instance, bool memoize) {
  BackendRig rig;
  rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
  rig.engines.push_back(
      RoundEngine::CreateSerial(rig.comparators.back().get(), memoize));
  rig.names.push_back("serial");
  for (int64_t threads : {2, 8}) {
    rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
    Result<std::unique_ptr<RoundEngine>> parallel =
        RoundEngine::CreateParallel(rig.comparators.back().get(), threads,
                                    /*seed=*/99, memoize);
    CROWDMAX_CHECK(parallel.ok());
    rig.engines.push_back(std::move(parallel).value());
    rig.names.push_back("threads=" + std::to_string(threads));
  }
  rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
  rig.executors.push_back(
      std::make_unique<ComparatorBatchExecutor>(rig.comparators.back().get()));
  Result<std::unique_ptr<RoundEngine>> batched =
      RoundEngine::CreateBatched(rig.executors.back().get());
  CROWDMAX_CHECK(batched.ok());
  rig.engines.push_back(std::move(batched).value());
  rig.names.push_back("executor");
  return rig;
}

TEST(RoundEngineEquivalenceTest, FilterIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(500, 3);
  FilterOptions options;
  options.u_n = 6;
  options.memoize = true;
  options.global_loss_counter = true;

  BackendRig rig = MakeAllBackends(instance, options.memoize);
  std::vector<FilterEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<FilterEngineRun> run =
        RunFilterOnEngine(instance.AllElements(), options, engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].filter.candidates, runs[0].filter.candidates)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.rounds, runs[0].filter.rounds) << rig.names[i];
    EXPECT_EQ(runs[i].filter.round_sizes, runs[0].filter.round_sizes)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.paid_comparisons,
              runs[0].filter.paid_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.issued_comparisons,
              runs[0].filter.issued_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.evicted_by_loss_counter,
              runs[0].filter.evicted_by_loss_counter)
        << rig.names[i];
  }
}

TEST(RoundEngineEquivalenceTest, TwoMaxFindIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(200, 5);
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/true);
  std::vector<MaxFindEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<MaxFindEngineRun> run =
        RunTwoMaxFindOnEngine(instance.AllElements(), engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  EXPECT_EQ(runs[0].maxfind.best, instance.MaxElement());
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].maxfind.best, runs[0].maxfind.best) << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.rounds, runs[0].maxfind.rounds)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.paid_comparisons,
              runs[0].maxfind.paid_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.issued_comparisons,
              runs[0].maxfind.issued_comparisons)
        << rig.names[i];
  }
}

TEST(RoundEngineEquivalenceTest, RandomizedMaxFindIdenticalAcrossBackends) {
  Instance instance = MakeInstance(700, 7);
  RandomizedMaxFindOptions options;
  options.seed = 17;
  options.group_size_override = 20;

  // The source's own sampling RNG is seeded by options, so every backend
  // replays the same partitions. The executor backend may pay less (its
  // in-round cache survives into the witness tournament) but must issue
  // the same comparisons and elect the same element.
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/false);
  std::vector<MaxFindEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<MaxFindEngineRun> run = RunRandomizedMaxFindOnEngine(
        instance.AllElements(), engine.get(), options);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].maxfind.best, runs[0].maxfind.best) << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.rounds, runs[0].maxfind.rounds)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.issued_comparisons,
              runs[0].maxfind.issued_comparisons)
        << rig.names[i];
  }
  // The comparator backends replay each other bit-for-bit, paid included.
  EXPECT_EQ(runs[1].maxfind.paid_comparisons,
            runs[0].maxfind.paid_comparisons);
  EXPECT_EQ(runs[2].maxfind.paid_comparisons,
            runs[0].maxfind.paid_comparisons);
}

TEST(RoundEngineEquivalenceTest, TournamentIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(40, 11);
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/false);
  std::vector<TournamentEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<TournamentEngineRun> run =
        RunTournamentOnEngine(instance.AllElements(), engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->unresolved, 0);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].tournament.wins, runs[0].tournament.wins)
        << rig.names[i];
    EXPECT_EQ(runs[i].tournament.comparisons, runs[0].tournament.comparisons)
        << rig.names[i];
  }
}

// The budget regression the refactor exists for: one enforcement point.
// With memoization on, a pair re-grouped into a later round is free (a
// cache hit), while the budget gate still prices the round at its full
// pair count. Serial and batched runs must agree exactly — candidates,
// paid, stop flag — at every budget, including right at the boundary.
TEST(RoundEngineBudgetTest, SerialAndBatchedChargeIdenticallyAtBoundary) {
  Instance instance = MakeInstance(420, 13);
  const double delta = instance.DeltaForU(9);

  ThresholdComparator::Options worker;
  worker.model = ThresholdModel{delta, 0.0};
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.memoize = true;

  // Unbudgeted reference run, to find real boundaries and to prove the
  // memoized cache actually served re-grouped pairs (issued > paid).
  ThresholdComparator probe_worker(&instance, worker, /*seed=*/14);
  Result<FilterResult> probe =
      FilterCandidates(instance.AllElements(), options, &probe_worker);
  ASSERT_TRUE(probe.ok());
  ASSERT_GT(probe->issued_comparisons, probe->paid_comparisons)
      << "instance does not exercise memoized re-grouping";
  const int64_t total = probe->paid_comparisons;

  for (int64_t budget :
       {total / 4, total / 2, total - 1, total, total + 1}) {
    if (budget < 1) continue;
    options.max_comparisons = budget;

    ThresholdComparator serial_worker(&instance, worker, /*seed=*/14);
    Result<FilterResult> serial =
        FilterCandidates(instance.AllElements(), options, &serial_worker);
    ASSERT_TRUE(serial.ok());

    ThresholdComparator batch_worker(&instance, worker, /*seed=*/14);
    ComparatorBatchExecutor executor(&batch_worker);
    Result<BatchedFilterResult> batched = BatchedFilterCandidates(
        instance.AllElements(), options, &executor);
    ASSERT_TRUE(batched.ok());

    EXPECT_EQ(batched->filter.candidates, serial->candidates)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.paid_comparisons, serial->paid_comparisons)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.issued_comparisons,
              serial->issued_comparisons)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.rounds, serial->rounds) << "budget=" << budget;
    EXPECT_EQ(batched->filter.stopped_by_budget, serial->stopped_by_budget)
        << "budget=" << budget;
    EXPECT_LE(serial->paid_comparisons, budget) << "budget=" << budget;
  }
}

TEST(RoundEngineCountersTest, MemoizedSerialCountersReconcile) {
  Instance instance = MakeInstance(300, 19);
  OracleComparator oracle(&instance);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(&oracle, /*memoize=*/true);
  FilterOptions options;
  options.u_n = 5;
  Result<FilterEngineRun> run =
      RunFilterOnEngine(instance.AllElements(), options, engine.get());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(engine->backend(), RoundEngine::Backend::kSerial);
  EXPECT_FALSE(engine->SupportsPartialEvidence());
  // paid = comparator spend; issued = every pair the sources emitted;
  // the difference is exactly the engine cache's work.
  EXPECT_EQ(engine->paid(), oracle.num_comparisons());
  EXPECT_EQ(engine->issued(), run->filter.issued_comparisons);
  EXPECT_EQ(engine->cache_hits(), engine->issued() - engine->paid());
  // Comparator backends predate step accounting.
  EXPECT_EQ(engine->logical_steps(), 0);
}

TEST(RoundEngineCountersTest, ExecutorBackendStepsMatchRounds) {
  Instance instance = MakeInstance(300, 23);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(&executor);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->backend(), RoundEngine::Backend::kExecutor);
  EXPECT_TRUE((*engine)->SupportsPartialEvidence());
  FilterOptions options;
  options.u_n = 5;
  options.memoize = true;
  Result<FilterEngineRun> run =
      RunFilterOnEngine(instance.AllElements(), options, engine->get());
  ASSERT_TRUE(run.ok());
  // One batch — one logical step — per filter round.
  EXPECT_EQ((*engine)->logical_steps(), run->filter.rounds);
  EXPECT_EQ((*engine)->paid(), executor.comparisons());
}

// Cross-phase evidence sharing (DESIGN.md §11): engines created over the
// same SharedPairCache and worker-class id trade answers; different class
// ids never do.
TEST(SharedCacheTest, SecondEngineSameClassPaysOnlyMisses) {
  Instance instance = MakeInstance(24, 61);
  const std::vector<ElementId> items = instance.AllElements();
  const int64_t total = static_cast<int64_t>(items.size() * (items.size() - 1) / 2);
  SharedPairCache cache;

  // Phase 1: a full tournament buys every pair into class 1.
  OracleComparator oracle1(&instance);
  ComparatorBatchExecutor executor1(&oracle1);
  Result<std::unique_ptr<RoundEngine>> first =
      RoundEngine::CreateBatched(&executor1, &cache, /*cache_class=*/1);
  ASSERT_TRUE(first.ok());
  Result<TournamentEngineRun> run1 =
      RunTournamentOnEngine(items, first->get());
  ASSERT_TRUE(run1.ok());
  EXPECT_EQ((*first)->paid(), total);
  EXPECT_EQ(cache.ResolvedPairs(1), total);

  // Phase 2 on the same class: every pair is a hit, nothing reaches the
  // executor, and the election is identical.
  OracleComparator oracle2(&instance);
  ComparatorBatchExecutor executor2(&oracle2);
  Result<std::unique_ptr<RoundEngine>> second =
      RoundEngine::CreateBatched(&executor2, &cache, /*cache_class=*/1);
  ASSERT_TRUE(second.ok());
  Result<TournamentEngineRun> run2 =
      RunTournamentOnEngine(items, second->get());
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ((*second)->issued(), total);
  EXPECT_EQ((*second)->paid(), 0);
  EXPECT_EQ((*second)->cache_hits(), total);
  EXPECT_EQ(executor2.comparisons(), 0);
  EXPECT_EQ(run2->tournament.wins, run1->tournament.wins);

  // A different worker class must not see that evidence: naive answers
  // never substitute for expert answers.
  OracleComparator oracle3(&instance);
  ComparatorBatchExecutor executor3(&oracle3);
  Result<std::unique_ptr<RoundEngine>> other_class =
      RoundEngine::CreateBatched(&executor3, &cache, /*cache_class=*/0);
  ASSERT_TRUE(other_class.ok());
  Result<TournamentEngineRun> run3 =
      RunTournamentOnEngine(items, other_class->get());
  ASSERT_TRUE(run3.ok());
  EXPECT_EQ((*other_class)->paid(), total);
  EXPECT_EQ((*other_class)->cache_hits(), 0);
}

// The serial (comparator) backend and the executor backend meet in one
// cache: a Phase-1 filter run on the serial engine seeds evidence a
// Phase-2 executor engine then reuses — the FindMaxWithExperts
// single-class (simulated-expert) regime in miniature.
TEST(SharedCacheTest, SerialFilterEvidenceVisibleToExecutorEngine) {
  Instance instance = MakeInstance(80, 67);
  SharedPairCache cache;

  OracleComparator filter_oracle(&instance);
  const std::unique_ptr<RoundEngine> filter_engine = RoundEngine::CreateSerial(
      &filter_oracle, /*memoize=*/true, &cache, /*cache_class=*/0);
  FilterOptions options;
  options.u_n = 6;
  options.memoize = true;
  Result<FilterEngineRun> filtered = RunFilterOnEngine(
      instance.AllElements(), options, filter_engine.get());
  ASSERT_TRUE(filtered.ok());
  ASSERT_GT(filtered->filter.candidates.size(), 1u);

  // Phase 2 over the survivors, same class: the survivors met in filter
  // groups, so at least part of the tournament is already paid for.
  OracleComparator expert_oracle(&instance);
  ComparatorBatchExecutor executor(&expert_oracle);
  Result<std::unique_ptr<RoundEngine>> phase2 =
      RoundEngine::CreateBatched(&executor, &cache, /*cache_class=*/0);
  ASSERT_TRUE(phase2.ok());
  Result<TournamentEngineRun> run =
      RunTournamentOnEngine(filtered->filter.candidates, phase2->get());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->unresolved, 0);
  EXPECT_GT((*phase2)->cache_hits(), 0);
  EXPECT_EQ((*phase2)->paid(), (*phase2)->issued() - (*phase2)->cache_hits());
  EXPECT_EQ((*phase2)->paid(), executor.comparisons());
  // The cross-phase winner agrees with ground truth on an oracle crowd.
  EXPECT_EQ(filtered->filter.candidates[IndexOfMostWins(run->tournament)],
            instance.MaxElement());
}

// kUnresolvedWinner entries persist in a shared cache as "asked, no
// evidence" — the next engine re-issues exactly those pairs (and pays for
// them), never treating the sentinel as an answer.
TEST(SharedCacheTest, UnresolvedPairsReissuedByLaterPipelinedEngine) {
  Instance instance = MakeInstance(16, 71);
  const std::vector<ElementId> items = instance.AllElements();
  const int64_t total = static_cast<int64_t>(items.size() * (items.size() - 1) / 2);
  SharedPairCache cache;

  // Phase 1 over a dropping crowd: some pairs come back with no evidence
  // and are parked as sentinels in class 0.
  OracleComparator faulty_oracle(&instance);
  ComparatorBatchExecutor faulty_inner(&faulty_oracle);
  InjectedFaultOptions faults;
  faults.drop_probability = 0.3;
  faults.seed = 9;
  Result<std::unique_ptr<FaultInjectingBatchExecutor>> dropping =
      FaultInjectingBatchExecutor::Create(&faulty_inner, faults);
  ASSERT_TRUE(dropping.ok());
  Result<std::unique_ptr<RoundEngine>> first =
      RoundEngine::CreateBatched(dropping->get(), &cache, /*cache_class=*/0);
  ASSERT_TRUE(first.ok());
  Result<TournamentEngineRun> run1 = RunTournamentOnEngine(items, first->get());
  ASSERT_TRUE(run1.ok());
  ASSERT_GT(run1->unresolved, 0) << "seed does not exercise drops";
  EXPECT_EQ(cache.ResolvedPairs(0), total - run1->unresolved);

  // Phase 2 on a healthy pipelined engine, same cache and class: only the
  // parked pairs are re-bought; everything else is a hit.
  OracleComparator healthy_oracle(&instance);
  ComparatorBatchExecutor healthy_executor(&healthy_oracle);
  AsyncBatchAdapter async(&healthy_executor);
  Result<std::unique_ptr<RoundEngine>> second = RoundEngine::CreatePipelined(
      &async, /*max_in_flight=*/4, &cache, /*cache_class=*/0);
  ASSERT_TRUE(second.ok());
  Result<TournamentEngineRun> run2 = RunTournamentOnEngine(items, second->get());
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->unresolved, 0);
  EXPECT_EQ((*second)->issued(), total);
  EXPECT_EQ((*second)->paid(), run1->unresolved);
  EXPECT_EQ((*second)->cache_hits(), total - run1->unresolved);
  EXPECT_EQ(cache.ResolvedPairs(0), total);
}

// A source that emits the same pair in two rounds while claiming the
// rounds may overlap — the CanPipelineNextRound contract violation the
// pipelined drive must reject instead of racing on the cached answer.
class OverlappingPairSource : public RoundSource {
 public:
  Result<bool> NextRound(EngineRound* round) override {
    if (emitted_ >= 2) return false;
    RoundUnit unit;
    unit.pairs.push_back({0, 1});
    round->units.push_back(std::move(unit));
    ++emitted_;
    return true;
  }
  Status ConsumeOutcome(const EngineRound&, const RoundOutcome&) override {
    return Status::OK();
  }
  bool CanPipelineNextRound() const override { return true; }

 private:
  int64_t emitted_ = 0;
};

TEST(PipelinedEngineTest, OverlappingInFlightPairIsContractViolation) {
  Instance instance = MakeInstance(2, 73);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreatePipelined(&async, /*max_in_flight=*/4);
  ASSERT_TRUE(engine.ok());

  OverlappingPairSource source;
  Result<DriveResult> drive = (*engine)->Drive(&source);
  ASSERT_FALSE(drive.ok());
  EXPECT_EQ(drive.status().code(), StatusCode::kInternal);
  EXPECT_NE(drive.status().ToString().find("still in flight"),
            std::string::npos);
}

// Depth 1 must degenerate to the synchronous executor path exactly; at
// depth > 1 the filter's disjoint groups overlap and the overlap counters
// move, with every result byte identical.
TEST(PipelinedEngineTest, PipelinedFilterMatchesBatchedAtEveryDepth) {
  Instance instance = MakeInstance(400, 79);
  FilterOptions options;
  options.u_n = 6;
  options.memoize = true;
  options.pipeline_groups = true;

  OracleComparator batched_oracle(&instance);
  ComparatorBatchExecutor batched_executor(&batched_oracle);
  Result<BatchedFilterResult> reference = BatchedFilterCandidates(
      instance.AllElements(), options, &batched_executor);
  ASSERT_TRUE(reference.ok());

  for (int64_t depth : {int64_t{1}, int64_t{8}}) {
    OracleComparator oracle(&instance);
    ComparatorBatchExecutor executor(&oracle);
    AsyncBatchAdapter async(&executor);
    BatchedPipelineOptions pipeline;
    pipeline.max_in_flight = depth;
    Result<BatchedFilterResult> piped = PipelinedFilterCandidates(
        instance.AllElements(), options, &async, pipeline);
    ASSERT_TRUE(piped.ok()) << "depth=" << depth;
    EXPECT_EQ(piped->filter.candidates, reference->filter.candidates)
        << "depth=" << depth;
    EXPECT_EQ(piped->filter.rounds, reference->filter.rounds)
        << "depth=" << depth;
    EXPECT_EQ(piped->filter.paid_comparisons,
              reference->filter.paid_comparisons)
        << "depth=" << depth;
    EXPECT_EQ(piped->filter.issued_comparisons,
              reference->filter.issued_comparisons)
        << "depth=" << depth;
    EXPECT_EQ(executor.comparisons(), batched_executor.comparisons())
        << "depth=" << depth;
    EXPECT_EQ(executor.logical_steps(), batched_executor.logical_steps())
        << "depth=" << depth;
  }
}

TEST(PipelinedEngineTest, OverlapCountersObserveDepth) {
  Instance instance = MakeInstance(400, 83);
  FilterOptions options;
  options.u_n = 6;
  options.memoize = true;
  options.pipeline_groups = true;

  // Depth 1: submissions never overlap.
  {
    OracleComparator oracle(&instance);
    ComparatorBatchExecutor executor(&oracle);
    AsyncBatchAdapter async(&executor);
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreatePipelined(&async, /*max_in_flight=*/1);
    ASSERT_TRUE(engine.ok());
    Result<FilterEngineRun> run = RunFilterOnEngine(
        instance.AllElements(), options, engine->get());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ((*engine)->overlapped_rounds(), 0);
    EXPECT_EQ((*engine)->max_in_flight_observed(), 1);
  }
  // Depth 8: the per-round disjoint groups keep several rounds in flight.
  {
    OracleComparator oracle(&instance);
    ComparatorBatchExecutor executor(&oracle);
    AsyncBatchAdapter async(&executor);
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
    ASSERT_TRUE(engine.ok());
    Result<FilterEngineRun> run = RunFilterOnEngine(
        instance.AllElements(), options, engine->get());
    ASSERT_TRUE(run.ok());
    EXPECT_GT((*engine)->overlapped_rounds(), 0);
    EXPECT_GT((*engine)->max_in_flight_observed(), 1);
    EXPECT_LE((*engine)->max_in_flight_observed(), 8);
  }
}

TEST(RoundEngineGuardTest, ParallelCreationProbesFork) {
  Instance instance = MakeInstance(32, 29);
  UnforkableComparator unforkable(&instance);
  Result<std::unique_ptr<RoundEngine>> parallel =
      RoundEngine::CreateParallel(&unforkable, /*threads=*/2, /*seed=*/1,
                                  /*memoize=*/false);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parallel.status().ToString().find(
                "the parallel engine requires a forkable comparator"),
            std::string::npos);

  // The serial backend takes any comparator.
  OracleComparator oracle(&instance);
  EXPECT_NE(RoundEngine::CreateSerial(&oracle, /*memoize=*/false), nullptr);
}

}  // namespace
}  // namespace crowdmax
