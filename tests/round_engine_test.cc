// The RoundEngine contract (core/round_engine.h): one execution core
// behind every algorithm. These suites pin
//  * cross-backend equivalence — the serial engine, the parallel engine at
//    threads {2, 8}, and the executor-backed engine produce identical
//    results for every ported RoundSource when worker answers are
//    deterministic (the backends may only differ through RNG draw order,
//    which an oracle never consumes);
//  * the single budget enforcement point — serial and batched runs charge
//    identically around the FilterOptions::max_comparisons boundary, even
//    when memoization makes a re-grouped pair free while the worst-case
//    round gate still counts it;
//  * the engine-owned counters (paid / issued / cache_hits /
//    logical_steps) and the backend guard rails (Fork probing,
//    SupportsPartialEvidence).

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/maxfind.h"
#include "core/round_engine.h"
#include "core/tournament.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

class UnforkableComparator : public Comparator {
 public:
  explicit UnforkableComparator(const Instance* instance)
      : instance_(instance) {}

 private:
  ElementId DoCompare(ElementId a, ElementId b) override {
    return instance_->value(a) >= instance_->value(b) ? a : b;
  }
  const Instance* instance_;
};

// Builds every backend over its own oracle comparator/executor so counters
// are per-run. Index 0 = serial, 1..2 = parallel {2, 8}, 3 = executor.
struct BackendRig {
  std::vector<std::unique_ptr<OracleComparator>> comparators;
  std::vector<std::unique_ptr<ComparatorBatchExecutor>> executors;
  std::vector<std::unique_ptr<RoundEngine>> engines;
  std::vector<std::string> names;
};

BackendRig MakeAllBackends(const Instance& instance, bool memoize) {
  BackendRig rig;
  rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
  rig.engines.push_back(
      RoundEngine::CreateSerial(rig.comparators.back().get(), memoize));
  rig.names.push_back("serial");
  for (int64_t threads : {2, 8}) {
    rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
    Result<std::unique_ptr<RoundEngine>> parallel =
        RoundEngine::CreateParallel(rig.comparators.back().get(), threads,
                                    /*seed=*/99, memoize);
    CROWDMAX_CHECK(parallel.ok());
    rig.engines.push_back(std::move(parallel).value());
    rig.names.push_back("threads=" + std::to_string(threads));
  }
  rig.comparators.push_back(std::make_unique<OracleComparator>(&instance));
  rig.executors.push_back(
      std::make_unique<ComparatorBatchExecutor>(rig.comparators.back().get()));
  Result<std::unique_ptr<RoundEngine>> batched =
      RoundEngine::CreateBatched(rig.executors.back().get());
  CROWDMAX_CHECK(batched.ok());
  rig.engines.push_back(std::move(batched).value());
  rig.names.push_back("executor");
  return rig;
}

TEST(RoundEngineEquivalenceTest, FilterIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(500, 3);
  FilterOptions options;
  options.u_n = 6;
  options.memoize = true;
  options.global_loss_counter = true;

  BackendRig rig = MakeAllBackends(instance, options.memoize);
  std::vector<FilterEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<FilterEngineRun> run =
        RunFilterOnEngine(instance.AllElements(), options, engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].filter.candidates, runs[0].filter.candidates)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.rounds, runs[0].filter.rounds) << rig.names[i];
    EXPECT_EQ(runs[i].filter.round_sizes, runs[0].filter.round_sizes)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.paid_comparisons,
              runs[0].filter.paid_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.issued_comparisons,
              runs[0].filter.issued_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].filter.evicted_by_loss_counter,
              runs[0].filter.evicted_by_loss_counter)
        << rig.names[i];
  }
}

TEST(RoundEngineEquivalenceTest, TwoMaxFindIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(200, 5);
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/true);
  std::vector<MaxFindEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<MaxFindEngineRun> run =
        RunTwoMaxFindOnEngine(instance.AllElements(), engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  EXPECT_EQ(runs[0].maxfind.best, instance.MaxElement());
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].maxfind.best, runs[0].maxfind.best) << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.rounds, runs[0].maxfind.rounds)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.paid_comparisons,
              runs[0].maxfind.paid_comparisons)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.issued_comparisons,
              runs[0].maxfind.issued_comparisons)
        << rig.names[i];
  }
}

TEST(RoundEngineEquivalenceTest, RandomizedMaxFindIdenticalAcrossBackends) {
  Instance instance = MakeInstance(700, 7);
  RandomizedMaxFindOptions options;
  options.seed = 17;
  options.group_size_override = 20;

  // The source's own sampling RNG is seeded by options, so every backend
  // replays the same partitions. The executor backend may pay less (its
  // in-round cache survives into the witness tournament) but must issue
  // the same comparisons and elect the same element.
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/false);
  std::vector<MaxFindEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<MaxFindEngineRun> run = RunRandomizedMaxFindOnEngine(
        instance.AllElements(), engine.get(), options);
    ASSERT_TRUE(run.ok());
    EXPECT_FALSE(run->partial);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].maxfind.best, runs[0].maxfind.best) << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.rounds, runs[0].maxfind.rounds)
        << rig.names[i];
    EXPECT_EQ(runs[i].maxfind.issued_comparisons,
              runs[0].maxfind.issued_comparisons)
        << rig.names[i];
  }
  // The comparator backends replay each other bit-for-bit, paid included.
  EXPECT_EQ(runs[1].maxfind.paid_comparisons,
            runs[0].maxfind.paid_comparisons);
  EXPECT_EQ(runs[2].maxfind.paid_comparisons,
            runs[0].maxfind.paid_comparisons);
}

TEST(RoundEngineEquivalenceTest, TournamentIdenticalAcrossAllBackends) {
  Instance instance = MakeInstance(40, 11);
  BackendRig rig = MakeAllBackends(instance, /*memoize=*/false);
  std::vector<TournamentEngineRun> runs;
  for (std::unique_ptr<RoundEngine>& engine : rig.engines) {
    Result<TournamentEngineRun> run =
        RunTournamentOnEngine(instance.AllElements(), engine.get());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->unresolved, 0);
    runs.push_back(*std::move(run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].tournament.wins, runs[0].tournament.wins)
        << rig.names[i];
    EXPECT_EQ(runs[i].tournament.comparisons, runs[0].tournament.comparisons)
        << rig.names[i];
  }
}

// The budget regression the refactor exists for: one enforcement point.
// With memoization on, a pair re-grouped into a later round is free (a
// cache hit), while the budget gate still prices the round at its full
// pair count. Serial and batched runs must agree exactly — candidates,
// paid, stop flag — at every budget, including right at the boundary.
TEST(RoundEngineBudgetTest, SerialAndBatchedChargeIdenticallyAtBoundary) {
  Instance instance = MakeInstance(420, 13);
  const double delta = instance.DeltaForU(9);

  ThresholdComparator::Options worker;
  worker.model = ThresholdModel{delta, 0.0};
  worker.tie_policy = TiePolicy::kPersistentArbitrary;

  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.memoize = true;

  // Unbudgeted reference run, to find real boundaries and to prove the
  // memoized cache actually served re-grouped pairs (issued > paid).
  ThresholdComparator probe_worker(&instance, worker, /*seed=*/14);
  Result<FilterResult> probe =
      FilterCandidates(instance.AllElements(), options, &probe_worker);
  ASSERT_TRUE(probe.ok());
  ASSERT_GT(probe->issued_comparisons, probe->paid_comparisons)
      << "instance does not exercise memoized re-grouping";
  const int64_t total = probe->paid_comparisons;

  for (int64_t budget :
       {total / 4, total / 2, total - 1, total, total + 1}) {
    if (budget < 1) continue;
    options.max_comparisons = budget;

    ThresholdComparator serial_worker(&instance, worker, /*seed=*/14);
    Result<FilterResult> serial =
        FilterCandidates(instance.AllElements(), options, &serial_worker);
    ASSERT_TRUE(serial.ok());

    ThresholdComparator batch_worker(&instance, worker, /*seed=*/14);
    ComparatorBatchExecutor executor(&batch_worker);
    Result<BatchedFilterResult> batched = BatchedFilterCandidates(
        instance.AllElements(), options, &executor);
    ASSERT_TRUE(batched.ok());

    EXPECT_EQ(batched->filter.candidates, serial->candidates)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.paid_comparisons, serial->paid_comparisons)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.issued_comparisons,
              serial->issued_comparisons)
        << "budget=" << budget;
    EXPECT_EQ(batched->filter.rounds, serial->rounds) << "budget=" << budget;
    EXPECT_EQ(batched->filter.stopped_by_budget, serial->stopped_by_budget)
        << "budget=" << budget;
    EXPECT_LE(serial->paid_comparisons, budget) << "budget=" << budget;
  }
}

TEST(RoundEngineCountersTest, MemoizedSerialCountersReconcile) {
  Instance instance = MakeInstance(300, 19);
  OracleComparator oracle(&instance);
  const std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(&oracle, /*memoize=*/true);
  FilterOptions options;
  options.u_n = 5;
  Result<FilterEngineRun> run =
      RunFilterOnEngine(instance.AllElements(), options, engine.get());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(engine->backend(), RoundEngine::Backend::kSerial);
  EXPECT_FALSE(engine->SupportsPartialEvidence());
  // paid = comparator spend; issued = every pair the sources emitted;
  // the difference is exactly the engine cache's work.
  EXPECT_EQ(engine->paid(), oracle.num_comparisons());
  EXPECT_EQ(engine->issued(), run->filter.issued_comparisons);
  EXPECT_EQ(engine->cache_hits(), engine->issued() - engine->paid());
  // Comparator backends predate step accounting.
  EXPECT_EQ(engine->logical_steps(), 0);
}

TEST(RoundEngineCountersTest, ExecutorBackendStepsMatchRounds) {
  Instance instance = MakeInstance(300, 23);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(&executor);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->backend(), RoundEngine::Backend::kExecutor);
  EXPECT_TRUE((*engine)->SupportsPartialEvidence());
  FilterOptions options;
  options.u_n = 5;
  options.memoize = true;
  Result<FilterEngineRun> run =
      RunFilterOnEngine(instance.AllElements(), options, engine->get());
  ASSERT_TRUE(run.ok());
  // One batch — one logical step — per filter round.
  EXPECT_EQ((*engine)->logical_steps(), run->filter.rounds);
  EXPECT_EQ((*engine)->paid(), executor.comparisons());
}

TEST(RoundEngineGuardTest, ParallelCreationProbesFork) {
  Instance instance = MakeInstance(32, 29);
  UnforkableComparator unforkable(&instance);
  Result<std::unique_ptr<RoundEngine>> parallel =
      RoundEngine::CreateParallel(&unforkable, /*threads=*/2, /*seed=*/1,
                                  /*memoize=*/false);
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parallel.status().ToString().find(
                "the parallel engine requires a forkable comparator"),
            std::string::npos);

  // The serial backend takes any comparator.
  OracleComparator oracle(&instance);
  EXPECT_NE(RoundEngine::CreateSerial(&oracle, /*memoize=*/false), nullptr);
}

}  // namespace
}  // namespace crowdmax
