// The checkpoint format contract (core/checkpoint.h): typed round trips,
// canonical serialization of unordered containers, the sticky-error
// reader, the magic/version forward-compat gate, the hex transport codec,
// and the CheckpointController snapshot/crash/resume lifecycle. The golden
// suite pins the version-2 byte format itself: a checkpoint captured by an
// older build of this code must keep restoring bit-identically (the file
// tests/golden/checkpoint_v2.hex is regenerated only on deliberate format
// bumps, together with kCheckpointVersion — v2 added the engine's
// speculation counters and the executor's cancelled-comparison tally).

#include <array>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/round_engine.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

TEST(CheckpointFormatTest, TypedFieldsRoundTrip) {
  CheckpointWriter writer;
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);
  writer.WriteI64(-42);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteDouble(0.1);
  writer.WriteString("hello checkpoint");
  writer.WriteString("");
  writer.WriteStatus(Status::OK());
  writer.WriteStatus(Status::Unavailable("crowd down").WithRetryAfter(7));
  const std::array<uint64_t, 5> rng_state = {1, 2, 3, 4, 0xABCDull};
  writer.WriteRngState(rng_state);
  writer.WriteIdVector(std::vector<int>{3, -1, 7});
  writer.WriteIdVector(std::vector<int64_t>{1LL << 40});

  Result<CheckpointReader> opened = CheckpointReader::Open(writer.bytes());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  CheckpointReader reader = std::move(opened).value();
  EXPECT_EQ(reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(reader.ReadI64(), -42);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_FALSE(reader.ReadBool());
  EXPECT_EQ(reader.ReadDouble(), 0.1);
  EXPECT_EQ(reader.ReadString(), "hello checkpoint");
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadStatus().ok());
  Status fault = reader.ReadStatus();
  EXPECT_EQ(fault.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fault.retry_after_steps(), 7);
  EXPECT_EQ(reader.ReadRngState(), rng_state);
  std::vector<int> ints;
  reader.ReadIdVector(&ints);
  EXPECT_EQ(ints, (std::vector<int>{3, -1, 7}));
  std::vector<int64_t> wide;
  reader.ReadIdVector(&wide);
  EXPECT_EQ(wide, (std::vector<int64_t>{1LL << 40}));
  EXPECT_TRUE(reader.Finish().ok()) << reader.Finish().ToString();
}

TEST(CheckpointFormatTest, UnorderedContainersSerializeCanonically) {
  // Same logical contents inserted in different orders must produce the
  // same bytes — the property golden captures depend on.
  std::unordered_map<uint64_t, int64_t> a, b;
  a[9] = 1;
  a[2] = 5;
  a[7] = -3;
  b[7] = -3;
  b[9] = 1;
  b[2] = 5;
  std::unordered_set<int> sa{4, 1, 8}, sb{8, 4, 1};

  CheckpointWriter wa, wb;
  wa.WriteSortedMap(a);
  wa.WriteSortedSet(sa);
  wb.WriteSortedMap(b);
  wb.WriteSortedSet(sb);
  EXPECT_EQ(wa.bytes(), wb.bytes());

  Result<CheckpointReader> opened = CheckpointReader::Open(wa.bytes());
  ASSERT_TRUE(opened.ok());
  CheckpointReader reader = std::move(opened).value();
  std::unordered_map<uint64_t, int64_t> map_back;
  reader.ReadSortedMap(&map_back);
  EXPECT_EQ(map_back, a);
  std::unordered_set<int> set_back;
  reader.ReadSortedSet(&set_back);
  EXPECT_EQ(set_back, sa);
  EXPECT_TRUE(reader.Finish().ok());
}

TEST(CheckpointFormatTest, OpenRejectsBadMagic) {
  std::string bytes = CheckpointWriter().bytes();
  bytes[0] = 'X';  // Corrupt the magic.
  Result<CheckpointReader> opened = CheckpointReader::Open(bytes);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(opened.status().message().find("bad magic"), std::string::npos);
}

TEST(CheckpointFormatTest, OpenRejectsNewerVersionTyped) {
  // A version-3 header written by a future build: today's reader must
  // refuse with a typed status, never misparse.
  std::string bytes = CheckpointWriter().bytes();
  bytes[4] = '\x03';  // Version field, little-endian low byte.
  Result<CheckpointReader> opened = CheckpointReader::Open(bytes);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(opened.status().message().find("newer than the supported"),
            std::string::npos);
}

TEST(CheckpointFormatTest, OpenRejectsTruncatedHeader) {
  Result<CheckpointReader> opened = CheckpointReader::Open("CMK");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointFormatTest, TagMismatchLatchesStickyError) {
  CheckpointWriter writer;
  writer.WriteTag(CheckpointTag("AAAA"));
  writer.WriteI64(123);
  Result<CheckpointReader> opened = CheckpointReader::Open(writer.bytes());
  ASSERT_TRUE(opened.ok());
  CheckpointReader reader = std::move(opened).value();
  reader.ExpectTag(CheckpointTag("BBBB"));
  EXPECT_FALSE(reader.status().ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  // Sticky: later reads return zero values and the error survives Finish.
  EXPECT_EQ(reader.ReadI64(), 0);
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(CheckpointFormatTest, TruncationLatchesStickyError) {
  CheckpointWriter writer;
  writer.WriteU32(1);
  Result<CheckpointReader> opened = CheckpointReader::Open(writer.bytes());
  ASSERT_TRUE(opened.ok());
  CheckpointReader reader = std::move(opened).value();
  EXPECT_EQ(reader.ReadU64(), 0u);  // Only 4 bytes remain.
  EXPECT_FALSE(reader.status().ok());
  EXPECT_FALSE(reader.Finish().ok());
}

TEST(CheckpointFormatTest, FinishFlagsTrailingBytes) {
  CheckpointWriter writer;
  writer.WriteI64(1);
  writer.WriteI64(2);
  Result<CheckpointReader> opened = CheckpointReader::Open(writer.bytes());
  ASSERT_TRUE(opened.ok());
  CheckpointReader reader = std::move(opened).value();
  EXPECT_EQ(reader.ReadI64(), 1);
  Status finish = reader.Finish();
  EXPECT_EQ(finish.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(finish.message().find("trailing bytes"), std::string::npos);
}

TEST(CheckpointHexTest, RoundTripsArbitraryBytes) {
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  Result<std::string> back = CheckpointFromHex(CheckpointToHex(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bytes);
}

TEST(CheckpointHexTest, IgnoresWhitespaceAcceptsUppercase) {
  Result<std::string> back = CheckpointFromHex("4D 4b\n0A\tfF");
  ASSERT_TRUE(back.ok());
  std::string expected{'\x4D', '\x4B', '\x0A'};
  expected.push_back(static_cast<char>(0xFF));
  EXPECT_EQ(*back, expected);
}

TEST(CheckpointHexTest, RejectsBadDigitsTyped) {
  Result<std::string> bad = CheckpointFromHex("zz");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointControllerTest, SnapshotsOnCadence) {
  CheckpointController controller;
  controller.set_snapshot_every_rounds(3);
  int64_t serialized = 0;
  auto serialize = [&]() -> Result<std::string> {
    ++serialized;
    return std::string("snap") + std::to_string(serialized);
  };
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(controller.OnRoundBoundary(serialize).ok());
  }
  // Boundaries 3 and 6 snapshot; serialization is lazy otherwise.
  EXPECT_EQ(serialized, 2);
  EXPECT_EQ(controller.snapshots_taken(), 2);
  EXPECT_EQ(controller.boundaries_seen(), 7);
  EXPECT_TRUE(controller.has_checkpoint());
  EXPECT_EQ(controller.checkpoint(), "snap2");
  EXPECT_FALSE(controller.crashed());
}

TEST(CheckpointControllerTest, ArmedCrashSnapshotsThenAborts) {
  CheckpointController controller;
  controller.set_snapshot_every_rounds(100);  // Cadence never fires.
  controller.ArmCrashAtBoundary(2);
  auto serialize = []() -> Result<std::string> { return std::string("s"); };
  EXPECT_TRUE(controller.OnRoundBoundary(serialize).ok());
  Status crash = controller.OnRoundBoundary(serialize);
  EXPECT_EQ(crash.code(), StatusCode::kAborted);
  EXPECT_NE(crash.message().find("round boundary 2"), std::string::npos);
  // The crash is recoverable by construction: a snapshot was taken first.
  EXPECT_TRUE(controller.crashed());
  EXPECT_TRUE(controller.has_checkpoint());
  // Boundaries after the armed one do not crash again.
  EXPECT_TRUE(controller.OnRoundBoundary(serialize).ok());
}

TEST(CheckpointControllerTest, RestoreLifecycle) {
  CheckpointController controller;
  EXPECT_EQ(controller.PendingRestore(), nullptr);
  controller.ResumeFrom("bytes");
  ASSERT_NE(controller.PendingRestore(), nullptr);
  EXPECT_EQ(*controller.PendingRestore(), "bytes");
  controller.MarkRestored();
  EXPECT_EQ(controller.PendingRestore(), nullptr);
  EXPECT_EQ(controller.restores(), 1);
}

// --- the golden format suite ----------------------------------------------

// A small, fully deterministic run whose first-round-boundary checkpoint is
// the committed golden capture: filter over a fixed uniform instance with
// an oracle comparator and a memoizing serial engine. Nothing here draws
// from RNG streams, so the checkpoint bytes depend only on the format.
struct GoldenRun {
  Instance instance;
  FilterOptions options;
  std::vector<ElementId> items;
};

GoldenRun MakeGoldenRun() {
  GoldenRun run{MakeInstance(24, /*seed=*/7), FilterOptions(), {}};
  run.options.u_n = 2;
  run.options.memoize = true;
  run.options.global_loss_counter = true;
  for (int i = 0; i < run.instance.size(); ++i) run.items.push_back(i);
  return run;
}

std::string CaptureGoldenCheckpoint(const GoldenRun& run) {
  OracleComparator comparator(&run.instance);
  std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(&comparator, /*memoize=*/true);
  CheckpointController controller;
  controller.ArmCrashAtBoundary(1);
  engine->set_checkpoint(&controller);
  Result<FilterEngineRun> crashed =
      RunFilterOnEngine(run.items, run.options, engine.get());
  CROWDMAX_CHECK(!crashed.ok() &&
                 crashed.status().code() == StatusCode::kAborted);
  CROWDMAX_CHECK(controller.has_checkpoint());
  return controller.checkpoint();
}

std::string GoldenPath() {
  return std::string(CROWDMAX_GOLDEN_DIR) + "/checkpoint_v2.hex";
}

TEST(CheckpointGoldenTest, CapturedBytesMatchCommittedGolden) {
  const std::string hex = CheckpointToHex(CaptureGoldenCheckpoint(MakeGoldenRun()));
  if (std::getenv("CROWDMAX_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << hex << "\n";
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << GoldenPath()
      << " missing; run with CROWDMAX_WRITE_GOLDEN=1 to regenerate";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string golden = buffer.str();
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r')) {
    golden.pop_back();
  }
  EXPECT_EQ(hex, golden)
      << "checkpoint byte format drifted; if deliberate, bump "
         "kCheckpointVersion and regenerate with CROWDMAX_WRITE_GOLDEN=1";
}

TEST(CheckpointGoldenTest, CommittedGoldenStillRestores) {
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << GoldenPath()
      << " missing; run with CROWDMAX_WRITE_GOLDEN=1 to regenerate";
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<std::string> bytes = CheckpointFromHex(buffer.str());
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  const GoldenRun run = MakeGoldenRun();

  // The uninterrupted baseline.
  OracleComparator baseline_comparator(&run.instance);
  std::unique_ptr<RoundEngine> baseline_engine =
      RoundEngine::CreateSerial(&baseline_comparator, /*memoize=*/true);
  Result<FilterEngineRun> baseline =
      RunFilterOnEngine(run.items, run.options, baseline_engine.get());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // A fresh stack resumed from the committed capture must finish the run
  // bit-identically — the forward-compat contract in action.
  OracleComparator comparator(&run.instance);
  std::unique_ptr<RoundEngine> engine =
      RoundEngine::CreateSerial(&comparator, /*memoize=*/true);
  CheckpointController controller;
  controller.ResumeFrom(*bytes);
  engine->set_checkpoint(&controller);
  Result<FilterEngineRun> resumed =
      RunFilterOnEngine(run.items, run.options, engine.get());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(controller.restores(), 1);
  EXPECT_EQ(resumed->filter.candidates, baseline->filter.candidates);
  EXPECT_EQ(resumed->filter.paid_comparisons,
            baseline->filter.paid_comparisons);
  EXPECT_EQ(resumed->filter.issued_comparisons,
            baseline->filter.issued_comparisons);
  EXPECT_EQ(resumed->filter.rounds, baseline->filter.rounds);
  EXPECT_EQ(comparator.num_comparisons(),
            baseline_comparator.num_comparisons());
}

}  // namespace
}  // namespace crowdmax
