// Tests for the structured trace (core/trace.h): span nesting and
// deterministic sequence numbers, cell attribution to the innermost
// phase/round, the ScopedTrace installation stack, and the
// MetricsAuditor's reconciliation identity.

#include "core/trace.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost.h"

namespace crowdmax {
namespace {

TEST(TraceTest, SpansNestWithDeterministicSequenceNumbers) {
  AlgoTrace trace;
  const int64_t run = trace.BeginSpan(TraceSpanKind::kRun, "run");
  const int64_t phase = trace.BeginPhase("filter", TraceWorkerClass::kNaive);
  const int64_t round = trace.BeginRound(1);
  trace.EndSpan(round);
  trace.EndSpan(phase);
  trace.EndSpan(run);

  ASSERT_EQ(trace.spans().size(), 3u);
  const TraceSpan& run_span = trace.spans()[0];
  const TraceSpan& phase_span = trace.spans()[1];
  const TraceSpan& round_span = trace.spans()[2];

  EXPECT_EQ(run_span.parent, -1);
  EXPECT_EQ(phase_span.parent, run_span.id);
  EXPECT_EQ(round_span.parent, phase_span.id);
  EXPECT_EQ(phase_span.kind, TraceSpanKind::kPhase);
  EXPECT_EQ(phase_span.label, "filter");
  EXPECT_EQ(round_span.kind, TraceSpanKind::kRound);
  EXPECT_EQ(round_span.round, 1);

  // Sequence numbers are the positions in the single event stream:
  // begin(run)=0, begin(phase)=1, begin(round)=2, end(round)=3, ...
  EXPECT_EQ(run_span.begin_seq, 0);
  EXPECT_EQ(phase_span.begin_seq, 1);
  EXPECT_EQ(round_span.begin_seq, 2);
  EXPECT_EQ(round_span.end_seq, 3);
  EXPECT_EQ(phase_span.end_seq, 4);
  EXPECT_EQ(run_span.end_seq, 5);
}

TEST(TraceTest, CellsBillToInnermostPhaseAndRound) {
  AlgoTrace trace;
  // Outside any phase: the ("", -1, naive) cell.
  trace.RecordDispatched(2);
  trace.RecordOutcomes(2, 0, 0);

  const int64_t filter = trace.BeginPhase("filter", TraceWorkerClass::kNaive);
  const int64_t round1 = trace.BeginRound(1);
  trace.RecordDispatched(10);
  trace.RecordOutcomes(7, 2, 1);
  trace.EndSpan(round1);
  const int64_t round2 = trace.BeginRound(2);
  trace.RecordDispatched(4);
  trace.RecordOutcomes(4, 0, 0);
  trace.RecordCacheHits(3);
  trace.EndSpan(round2);
  trace.EndSpan(filter);

  const int64_t expert = trace.BeginPhase("expert", TraceWorkerClass::kExpert);
  trace.RecordDispatched(5);
  trace.RecordOutcomes(5, 0, 0);
  trace.EndSpan(expert);

  ASSERT_EQ(trace.cells().size(), 4u);
  const TraceCellCounts& outside =
      trace.cells().at({"", -1, TraceWorkerClass::kNaive});
  EXPECT_EQ(outside.dispatched, 2);
  const TraceCellCounts& r1 =
      trace.cells().at({"filter", 1, TraceWorkerClass::kNaive});
  EXPECT_EQ(r1.dispatched, 10);
  EXPECT_EQ(r1.answered, 7);
  EXPECT_EQ(r1.no_quorum, 2);
  EXPECT_EQ(r1.dropped, 1);
  const TraceCellCounts& r2 =
      trace.cells().at({"filter", 2, TraceWorkerClass::kNaive});
  EXPECT_EQ(r2.dispatched, 4);
  EXPECT_EQ(r2.cache_hits, 3);
  const TraceCellCounts& e =
      trace.cells().at({"expert", -1, TraceWorkerClass::kExpert});
  EXPECT_EQ(e.dispatched, 5);

  const TraceCellCounts naive_totals =
      trace.TotalsFor(TraceWorkerClass::kNaive);
  EXPECT_EQ(naive_totals.dispatched, 16);
  EXPECT_EQ(naive_totals.cache_hits, 3);
  EXPECT_EQ(trace.TotalsFor(TraceWorkerClass::kExpert).dispatched, 5);
  EXPECT_EQ(trace.Totals().dispatched, 21);
}

TEST(TraceTest, ClearDropsSpansAndCells) {
  AlgoTrace trace;
  const int64_t run = trace.BeginSpan(TraceSpanKind::kRun, "run");
  trace.RecordDispatched(1);
  trace.RecordOutcomes(1, 0, 0);
  trace.EndSpan(run);
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.cells().empty());
  // The trace is reusable after Clear(): sequence numbers restart.
  const int64_t again = trace.BeginSpan(TraceSpanKind::kRun, "again");
  trace.EndSpan(again);
  EXPECT_EQ(trace.spans()[0].begin_seq, 0);
}

TEST(TraceTest, SummaryIsDeterministicAndDistinguishesTraces) {
  auto build = [](int64_t dispatched) {
    AlgoTrace trace;
    const int64_t phase =
        trace.BeginPhase("filter", TraceWorkerClass::kNaive);
    const int64_t round = trace.BeginRound(1);
    trace.RecordDispatched(dispatched);
    trace.RecordOutcomes(dispatched, 0, 0);
    trace.EndSpan(round);
    trace.EndSpan(phase);
    return trace.Summary();
  };
  EXPECT_EQ(build(10), build(10));
  EXPECT_NE(build(10), build(11));
}

TEST(TraceTest, CurrentTraceFollowsScopedTraceNesting) {
  EXPECT_EQ(CurrentTrace(), nullptr);
  AlgoTrace outer;
  {
    ScopedTrace outer_scope(&outer);
    EXPECT_EQ(CurrentTrace(), &outer);
    AlgoTrace inner;
    {
      ScopedTrace inner_scope(&inner);
      EXPECT_EQ(CurrentTrace(), &inner);
    }
    EXPECT_EQ(CurrentTrace(), &outer);
  }
  EXPECT_EQ(CurrentTrace(), nullptr);
}

TEST(TraceTest, TraceSpanScopeIsNoOpWithoutInstalledTrace) {
  ASSERT_EQ(CurrentTrace(), nullptr);
  {
    TraceSpanScope span(TraceSpanKind::kRun, "orphan");
    TraceSpanScope phase(std::string("filter"), TraceWorkerClass::kNaive);
    TraceSpanScope round(int64_t{1});
  }
  // Nothing to assert beyond "did not crash": no trace, no spans.
  SUCCEED();
}

TEST(TraceTest, TraceSpanScopeRecordsIntoInstalledTrace) {
  AlgoTrace trace;
  {
    ScopedTrace scope(&trace);
    TraceSpanScope run(TraceSpanKind::kRun, "run");
    TraceSpanScope phase(std::string("expert"), TraceWorkerClass::kExpert);
    TraceSpanScope round(int64_t{3});
    CurrentTrace()->RecordDispatched(6);
    CurrentTrace()->RecordOutcomes(6, 0, 0);
  }
  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[2].round, 3);
  const TraceCellCounts& cell =
      trace.cells().at({"expert", 3, TraceWorkerClass::kExpert});
  EXPECT_EQ(cell.dispatched, 6);
}

TEST(TraceTest, WriteJsonEmitsSpansAndCells) {
  AlgoTrace trace;
  const int64_t phase = trace.BeginPhase("filter", TraceWorkerClass::kNaive);
  trace.RecordDispatched(3);
  trace.RecordOutcomes(3, 0, 0);
  trace.EndSpan(phase);
  std::ostringstream out;
  trace.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
  EXPECT_NE(json.find("filter"), std::string::npos);
}

TEST(AuditorTest, PassesWhenTalliesMatchTrace) {
  AlgoTrace trace;
  const int64_t filter = trace.BeginPhase("filter", TraceWorkerClass::kNaive);
  trace.RecordDispatched(12);
  trace.RecordOutcomes(10, 1, 1);
  trace.RecordCacheHits(4);
  trace.EndSpan(filter);
  const int64_t expert = trace.BeginPhase("expert", TraceWorkerClass::kExpert);
  trace.RecordDispatched(5);
  trace.RecordOutcomes(5, 0, 0);
  trace.EndSpan(expert);

  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatched(TraceWorkerClass::kNaive, 12);
  auditor.ExpectDispatched(TraceWorkerClass::kExpert, 5);
  auditor.ExpectDispatchedTotal(17);
  ComparisonStats paid;
  paid.naive = 12;
  paid.expert = 5;
  auditor.ExpectPaidStats(paid);
  auditor.ExpectTaskFaults(/*dropped=*/1, /*no_quorum=*/1);
  auditor.ExpectCacheHits(TraceWorkerClass::kNaive, 4);
  EXPECT_TRUE(auditor.Check().ok());
}

TEST(AuditorTest, FailsWhenCellIdentityIsBroken) {
  AlgoTrace trace;
  // answered + no_quorum + dropped = 9 != dispatched = 10.
  trace.RecordDispatched(10);
  trace.RecordOutcomes(8, 1, 0);
  MetricsAuditor auditor(&trace);
  const Status status = auditor.Check();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST(AuditorTest, ListsEveryMismatchedExpectation) {
  AlgoTrace trace;
  trace.RecordDispatched(10);
  trace.RecordOutcomes(10, 0, 0);
  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatchedTotal(12);                       // off by 2
  auditor.ExpectTaskFaults(/*dropped=*/3, /*no_quorum=*/0);  // off by 3
  const Status status = auditor.Check();
  ASSERT_FALSE(status.ok());
  const std::string message = status.ToString();
  EXPECT_NE(message.find("12"), std::string::npos);
  EXPECT_NE(message.find("3"), std::string::npos);
}

}  // namespace
}  // namespace crowdmax
