// Tests for the multi-class cascade extension.

#include <vector>

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/multilevel.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(MultilevelTest, InputValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  MultilevelOptions options;

  EXPECT_FALSE(FindMaxMultilevel({0, 1}, {}, options).ok());

  WorkerClassSpec null_spec;
  EXPECT_FALSE(FindMaxMultilevel({0, 1}, {null_spec}, options).ok());

  WorkerClassSpec ok_spec{&oracle, 1, 1.0};
  EXPECT_FALSE(FindMaxMultilevel({}, {ok_spec}, options).ok());

  WorkerClassSpec negative_cost{&oracle, 1, -1.0};
  EXPECT_FALSE(FindMaxMultilevel({0, 1}, {negative_cost}, options).ok());

  WorkerClassSpec bad_u{&oracle, 0, 1.0};
  // Bad u only matters on filtering levels (non-final classes).
  EXPECT_FALSE(FindMaxMultilevel({0, 1}, {bad_u, ok_spec}, options).ok());
}

TEST(MultilevelTest, SingleClassIsPlainPhase2) {
  Result<Instance> instance = UniformInstance(60, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  MultilevelOptions options;
  Result<MultilevelResult> result = FindMaxMultilevel(
      instance->AllElements(), {{&oracle, 1, 2.0}}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
  EXPECT_TRUE(result->candidates_per_level.empty());
  EXPECT_DOUBLE_EQ(result->total_cost,
                   2.0 * static_cast<double>(result->paid_per_class[0]));
}

TEST(MultilevelTest, TwoClassesMatchAlgorithmOneGuarantee) {
  Result<Instance> instance = UniformInstance(600, /*seed=*/5);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(12);
  const double delta_e = instance->DeltaForU(3);
  const int64_t u_n = instance->CountWithin(delta_n);

  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                            /*seed=*/6);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                             /*seed=*/7);
  MultilevelOptions options;
  Result<MultilevelResult> result = FindMaxMultilevel(
      instance->AllElements(),
      {{&naive, u_n, 1.0}, {&expert, 1, 50.0}}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(instance->Distance(result->best, instance->MaxElement()),
            2.0 * delta_e + 1e-12);
  ASSERT_EQ(result->candidates_per_level.size(), 1u);
  EXPECT_LE(result->candidates_per_level[0], 2 * u_n - 1);
}

TEST(MultilevelTest, ThreeClassCascadeShrinksProgressively) {
  Result<Instance> instance = UniformInstance(2000, /*seed=*/11);
  ASSERT_TRUE(instance.ok());
  const double delta_0 = instance->DeltaForU(40);
  const double delta_1 = instance->DeltaForU(8);
  const double delta_2 = instance->DeltaForU(2);
  const int64_t u_0 = instance->CountWithin(delta_0);
  const int64_t u_1 = instance->CountWithin(delta_1);

  ThresholdComparator crowd(&*instance, ThresholdModel{delta_0, 0.0},
                            /*seed=*/12);
  ThresholdComparator skilled(&*instance, ThresholdModel{delta_1, 0.0},
                              /*seed=*/13);
  ThresholdComparator specialist(&*instance, ThresholdModel{delta_2, 0.0},
                                 /*seed=*/14);

  MultilevelOptions options;
  Result<MultilevelResult> result = FindMaxMultilevel(
      instance->AllElements(),
      {{&crowd, u_0, 1.0}, {&skilled, u_1, 10.0}, {&specialist, 1, 100.0}},
      options);
  ASSERT_TRUE(result.ok());

  ASSERT_EQ(result->candidates_per_level.size(), 2u);
  EXPECT_LE(result->candidates_per_level[0], 2 * u_0 - 1);
  EXPECT_LE(result->candidates_per_level[1], 2 * u_1 - 1);
  EXPECT_LT(result->candidates_per_level[1], result->candidates_per_level[0]);
  EXPECT_LE(instance->Distance(result->best, instance->MaxElement()),
            2.0 * delta_2 + 1e-12);

  // Most comparisons happen at the cheapest level.
  EXPECT_GT(result->paid_per_class[0], result->paid_per_class[1]);
  EXPECT_GT(result->paid_per_class[1], result->paid_per_class[2]);
}

TEST(MultilevelTest, CascadeIsCheaperThanSkippingTheMiddleClass) {
  // The point of multiple classes: inserting a mid-price class between
  // crowd and specialist reduces total cost when the specialist is very
  // expensive.
  Result<Instance> instance = UniformInstance(3000, /*seed=*/21);
  ASSERT_TRUE(instance.ok());
  const double delta_0 = instance->DeltaForU(60);
  const double delta_1 = instance->DeltaForU(10);
  const double delta_2 = instance->DeltaForU(2);
  const int64_t u_0 = instance->CountWithin(delta_0);
  const int64_t u_1 = instance->CountWithin(delta_1);

  MultilevelOptions options;

  ThresholdComparator crowd_a(&*instance, ThresholdModel{delta_0, 0.0}, 31);
  ThresholdComparator mid_a(&*instance, ThresholdModel{delta_1, 0.0}, 32);
  ThresholdComparator top_a(&*instance, ThresholdModel{delta_2, 0.0}, 33);
  Result<MultilevelResult> three = FindMaxMultilevel(
      instance->AllElements(),
      {{&crowd_a, u_0, 1.0}, {&mid_a, u_1, 10.0}, {&top_a, 1, 1000.0}},
      options);
  ASSERT_TRUE(three.ok());

  ThresholdComparator crowd_b(&*instance, ThresholdModel{delta_0, 0.0}, 31);
  ThresholdComparator top_b(&*instance, ThresholdModel{delta_2, 0.0}, 33);
  Result<MultilevelResult> two = FindMaxMultilevel(
      instance->AllElements(), {{&crowd_b, u_0, 1.0}, {&top_b, 1, 1000.0}},
      options);
  ASSERT_TRUE(two.ok());

  EXPECT_LT(three->total_cost, two->total_cost);
}

}  // namespace
}  // namespace crowdmax
