// Tests for Algorithm 4 (u_n estimation from gold data) and the p_err
// estimation procedure of Section 4.4.

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/estimate.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(EstimateUnTest, InputValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  UnEstimateOptions options;

  EXPECT_FALSE(EstimateUn({}, 0, 100, &oracle, options).ok());
  EXPECT_FALSE(EstimateUn({0, 1}, 1, 0, &oracle, options).ok());
  EXPECT_FALSE(EstimateUn({0}, 1, 100, &oracle, options).ok());  // Not member.

  UnEstimateOptions bad_p = options;
  bad_p.p_err = 0.0;
  EXPECT_FALSE(EstimateUn({0, 1}, 1, 100, &oracle, bad_p).ok());
  UnEstimateOptions bad_c = options;
  bad_c.confidence_c = 0.0;
  EXPECT_FALSE(EstimateUn({0, 1}, 1, 100, &oracle, bad_c).ok());
}

TEST(EstimateUnTest, PerfectWorkersYieldFloorEstimate) {
  // With an oracle worker there are no errors; the estimate falls back to
  // the c*ln(n) confidence floor (scaled by n/n_hat).
  Result<Instance> instance = UniformInstance(100, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  const int64_t target_n = 1000;
  UnEstimateOptions options;
  options.p_err = 0.4;
  options.confidence_c = 2.0;
  Result<UnEstimate> estimate =
      EstimateUn(instance->AllElements(), instance->MaxElement(), target_n,
                 &oracle, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->observed_errors, 0);
  const double expected =
      (1000.0 / 100.0) * 2.0 * std::log(1000.0);  // ~138.
  EXPECT_NEAR(estimate->raw_estimate, expected, 1e-9);
  EXPECT_EQ(estimate->u_n,
            static_cast<int64_t>(std::ceil(expected)));
}

TEST(EstimateUnTest, EstimateIsCappedAtN) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  UnEstimateOptions options;
  Result<UnEstimate> estimate =
      EstimateUn(instance.AllElements(), 2, /*target_n=*/5, &oracle, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LE(estimate->u_n, 5);
  EXPECT_GE(estimate->u_n, 1);
}

TEST(EstimateUnTest, CountsBelowThresholdErrors) {
  // Training set where u_n - 1 elements are indistinguishable from the
  // max; under a fair coin roughly half of them produce errors.
  constexpr int64_t kTraining = 200;
  constexpr int64_t kIndistinguishable = 60;
  std::vector<double> values;
  values.push_back(10.0);  // The known maximum.
  for (int64_t i = 1; i < kTraining; ++i) {
    values.push_back(i < kIndistinguishable ? 9.95 - 1e-4 * i
                                            : 5.0 - 1e-3 * i);
  }
  Instance instance(std::move(values));
  ThresholdComparator worker(&instance, ThresholdModel{0.2, 0.0}, /*seed=*/7);

  UnEstimateOptions options;
  options.p_err = 0.5;  // Matches the fair coin.
  Result<UnEstimate> estimate = EstimateUn(
      instance.AllElements(), 0, /*target_n=*/kTraining, &worker, options);
  ASSERT_TRUE(estimate.ok());
  // E[errors] = p_err * (u_n - 1) ~ 29.5.
  EXPECT_GT(estimate->observed_errors, 15);
  EXPECT_LT(estimate->observed_errors, 45);
}

// Property sweep: Algorithm 4 returns an upper bound on the true u_n for
// the overwhelming majority of seeds.
class EstimateUpperBoundSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(EstimateUpperBoundSweep, EstimateUpperBoundsTrueUn) {
  const int64_t u_target = GetParam();
  int upper_bounded = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t seed = 100 * static_cast<uint64_t>(u_target) +
                          static_cast<uint64_t>(t);
    Result<Instance> training = UniformInstance(400, seed);
    ASSERT_TRUE(training.ok());
    const double delta = training->DeltaForU(u_target);
    const int64_t true_u = training->CountWithin(delta);
    ThresholdComparator worker(&*training, ThresholdModel{delta, 0.0},
                               seed + 1);
    UnEstimateOptions options;
    options.p_err = 0.5;
    Result<UnEstimate> estimate =
        EstimateUn(training->AllElements(), training->MaxElement(),
                   /*target_n=*/400, &worker, options);
    ASSERT_TRUE(estimate.ok());
    if (estimate->u_n >= true_u) ++upper_bounded;
  }
  EXPECT_GE(upper_bounded, kTrials - 1);
}

INSTANTIATE_TEST_SUITE_P(Us, EstimateUpperBoundSweep,
                         ::testing::Values<int64_t>(3, 8, 15, 30));

// ------------------------------------------------------------ p_err.

std::vector<std::pair<ElementId, ElementId>> AllPairs(const Instance& inst) {
  std::vector<std::pair<ElementId, ElementId>> pairs;
  for (ElementId a = 0; a < inst.size(); ++a) {
    for (ElementId b = a + 1; b < inst.size(); ++b) pairs.push_back({a, b});
  }
  return pairs;
}

TEST(EstimatePerrTest, InputValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  EXPECT_FALSE(EstimatePerr(instance, {}, 5, &oracle).ok());
  EXPECT_FALSE(EstimatePerr(instance, {{0, 1}}, 1, &oracle).ok());
  EXPECT_FALSE(EstimatePerr(instance, {{0, 7}}, 5, &oracle).ok());
}

TEST(EstimatePerrTest, AllConsensusReturnsNotFound) {
  Result<Instance> instance = UniformInstance(10, /*seed=*/3);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  Result<PerrEstimate> estimate =
      EstimatePerr(*instance, AllPairs(*instance), 7, &oracle);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kNotFound);
}

TEST(EstimatePerrTest, RecoversFairCoinErrorRate) {
  // Mixed instance: some pairs far apart (consensus), some within the
  // threshold (coin flips with p_err = 0.5).
  std::vector<double> values;
  for (int i = 0; i < 12; ++i) values.push_back(10.0 + 0.001 * i);  // Hard.
  for (int i = 0; i < 8; ++i) values.push_back(static_cast<double>(i));
  Instance instance(std::move(values));

  ThresholdComparator worker(&instance, ThresholdModel{0.5, 0.0}, /*seed=*/5);
  Result<PerrEstimate> estimate =
      EstimatePerr(instance, AllPairs(instance), /*votes_per_pair=*/15,
                   &worker);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GT(estimate->hard_pairs, 50);  // 12 choose 2 = 66 hard pairs.
  EXPECT_NEAR(estimate->p_err, 0.5, 0.06);
}

TEST(EstimatePerrTest, RecoversBiasedErrorRate) {
  std::vector<double> values;
  for (int i = 0; i < 14; ++i) values.push_back(10.0 + 0.001 * i);
  Instance instance(std::move(values));

  ThresholdComparator::Options options;
  options.model = ThresholdModel{0.5, 0.0};
  options.below_threshold_correct_prob = 0.65;  // p_err = 0.35.
  ThresholdComparator worker(&instance, options, /*seed=*/6);
  Result<PerrEstimate> estimate = EstimatePerr(
      instance, AllPairs(instance), /*votes_per_pair=*/21, &worker);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->p_err, 0.35, 0.06);
}

TEST(EstimatePerrTest, EndToEndFeedsEstimateUn) {
  // The full Section 4.4 pipeline: estimate p_err from gold pairs, then
  // u_n from gold max comparisons, and check the result upper-bounds the
  // true u_n.
  Result<Instance> training = UniformInstance(300, /*seed=*/71);
  ASSERT_TRUE(training.ok());
  const double delta = training->DeltaForU(12);
  const int64_t true_u = training->CountWithin(delta);
  ThresholdComparator worker(&*training, ThresholdModel{delta, 0.0},
                             /*seed=*/72);

  // Sample pairs near the top of the range to observe hard pairs.
  std::vector<std::pair<ElementId, ElementId>> pairs;
  for (ElementId a = 0; a < 40; ++a) {
    for (ElementId b = a + 1; b < 40; ++b) pairs.push_back({a, b});
  }
  Result<PerrEstimate> p_err = EstimatePerr(*training, pairs, 11, &worker);
  ASSERT_TRUE(p_err.ok());

  UnEstimateOptions options;
  options.p_err = p_err->p_err;
  Result<UnEstimate> estimate =
      EstimateUn(training->AllElements(), training->MaxElement(), 300,
                 &worker, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(estimate->u_n, true_u);
}

}  // namespace
}  // namespace crowdmax
