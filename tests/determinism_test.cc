// Determinism contract of the parallel tournament engine (the core promise
// of FilterOptions::threads and friends): for a fixed seed, the winner, the
// survivor set, and the paid/issued comparison counts are bit-identical for
// every thread count >= 1 — the thread schedule is unobservable. Also
// covers the guard rails: non-forkable comparators are rejected with
// InvalidArgument, and MemoizingComparator::Fork CHECK-fails rather than
// silently entering the parallel path.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/marcus.h"
#include "baselines/venetis.h"
#include "core/async_executor.h"
#include "core/batched.h"
#include "core/checkpoint.h"
#include "core/comparator.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/round_engine.h"
#include "core/resilient.h"
#include "core/trace.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

// A comparator without a Fork override: the base-class default (nullptr)
// must make every parallel entry point fail with InvalidArgument.
class UnforkableComparator : public Comparator {
 public:
  explicit UnforkableComparator(const Instance* instance)
      : instance_(instance) {}

 private:
  ElementId DoCompare(ElementId a, ElementId b) override {
    return instance_->value(a) >= instance_->value(b) ? a : b;
  }
  const Instance* instance_;
};

struct FullRun {
  ElementId best;
  std::vector<ElementId> candidates;
  int64_t paid_naive;
  int64_t paid_expert;
  int64_t issued_naive;
  int64_t filter_rounds;
};

FullRun RunTwoPhase(const Instance& instance, int64_t u_n, double delta_n,
                    double delta_e, int64_t threads) {
  ThresholdComparator naive(&instance, ThresholdModel{delta_n, 0.1}, 101);
  ThresholdComparator expert(&instance, ThresholdModel{delta_e, 0.0}, 202);
  ExpertMaxOptions options;
  options.filter.u_n = u_n;
  options.filter.threads = threads;
  Result<ExpertMaxResult> result =
      FindMaxWithExperts(instance.AllElements(), &naive, &expert, options);
  CROWDMAX_CHECK(result.ok());
  return FullRun{result->best,         result->candidates,
                 result->paid.naive,   result->paid.expert,
                 result->issued.naive, result->filter_rounds};
}

TEST(DeterminismTest, TwoPhaseIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(600, 7);
  const double delta_n = instance.DeltaForU(8);
  const double delta_e = instance.DeltaForU(2);
  const int64_t u_n = instance.CountWithin(delta_n);

  const FullRun base = RunTwoPhase(instance, u_n, delta_n, delta_e, 1);
  for (int64_t threads : {2, 8}) {
    const FullRun run = RunTwoPhase(instance, u_n, delta_n, delta_e, threads);
    EXPECT_EQ(run.best, base.best) << "threads=" << threads;
    EXPECT_EQ(run.candidates, base.candidates) << "threads=" << threads;
    EXPECT_EQ(run.paid_naive, base.paid_naive) << "threads=" << threads;
    EXPECT_EQ(run.paid_expert, base.paid_expert) << "threads=" << threads;
    EXPECT_EQ(run.issued_naive, base.issued_naive) << "threads=" << threads;
    EXPECT_EQ(run.filter_rounds, base.filter_rounds) << "threads=" << threads;
  }
}

TEST(DeterminismTest, TwoPhaseRepeatWithSameSeedIsBitIdentical) {
  Instance instance = MakeInstance(400, 11);
  const double delta_n = instance.DeltaForU(6);
  const double delta_e = instance.DeltaForU(2);
  const int64_t u_n = instance.CountWithin(delta_n);
  const FullRun first = RunTwoPhase(instance, u_n, delta_n, delta_e, 4);
  const FullRun second = RunTwoPhase(instance, u_n, delta_n, delta_e, 4);
  EXPECT_EQ(first.best, second.best);
  EXPECT_EQ(first.candidates, second.candidates);
  EXPECT_EQ(first.paid_naive, second.paid_naive);
  EXPECT_EQ(first.paid_expert, second.paid_expert);
}

TEST(DeterminismTest, MemoizedParallelFilterIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(500, 13);
  const double delta = instance.DeltaForU(10);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.memoize = true;
  options.global_loss_counter = true;

  std::vector<FilterResult> runs;
  for (int64_t threads : {1, 2, 8}) {
    ThresholdComparator naive(&instance, ThresholdModel{delta, 0.05}, 303);
    options.threads = threads;
    Result<FilterResult> result =
        FilterCandidates(instance.AllElements(), options, &naive);
    ASSERT_TRUE(result.ok());
    runs.push_back(*std::move(result));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].candidates, runs[0].candidates);
    EXPECT_EQ(runs[i].paid_comparisons, runs[0].paid_comparisons);
    EXPECT_EQ(runs[i].issued_comparisons, runs[0].issued_comparisons);
    EXPECT_EQ(runs[i].rounds, runs[0].rounds);
    EXPECT_EQ(runs[i].round_sizes, runs[0].round_sizes);
    EXPECT_EQ(runs[i].evicted_by_loss_counter,
              runs[0].evicted_by_loss_counter);
  }
  // Memoization must actually save comparisons in the parallel path too.
  EXPECT_LT(runs[0].paid_comparisons, runs[0].issued_comparisons + 1);
}

TEST(DeterminismTest, ParallelFilterFindsSameWinnerAsSerialUnderOracle) {
  // With a deterministic truthful comparator the serial and parallel paths
  // must agree on the surviving winner even though their RNG draw orders
  // differ (no randomness is consumed).
  Instance instance = MakeInstance(300, 17);
  FilterOptions options;
  options.u_n = 4;

  OracleComparator serial_cmp(&instance);
  Result<FilterResult> serial =
      FilterCandidates(instance.AllElements(), options, &serial_cmp);
  ASSERT_TRUE(serial.ok());

  options.threads = 4;
  OracleComparator parallel_cmp(&instance);
  Result<FilterResult> parallel =
      FilterCandidates(instance.AllElements(), options, &parallel_cmp);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(parallel->candidates, serial->candidates);
  EXPECT_EQ(parallel->paid_comparisons, serial->paid_comparisons);
}

TEST(DeterminismTest, ParallelBatchExecutorIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(256, 19);
  std::vector<ComparisonPair> tasks;
  for (ElementId a = 0; a < 255; ++a) tasks.emplace_back(a, a + 1);

  std::vector<std::vector<ElementId>> winners;
  std::vector<int64_t> paid;
  for (int64_t threads : {1, 4}) {
    ThresholdComparator cmp(&instance, ThresholdModel{0.05, 0.1}, 404);
    Result<std::unique_ptr<ParallelBatchExecutor>> executor =
        ParallelBatchExecutor::Create(&cmp, threads, /*seed=*/55,
                                      /*chunk_size=*/16);
    ASSERT_TRUE(executor.ok());
    winners.push_back((*executor)->ExecuteBatch(tasks));
    paid.push_back(cmp.num_comparisons());
  }
  EXPECT_EQ(winners[0], winners[1]);
  EXPECT_EQ(paid[0], paid[1]);
}

TEST(DeterminismTest, MarcusLadderIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(350, 23);
  MarcusOptions options;
  options.group_size = 10;

  std::vector<MaxFindResult> runs;
  for (int64_t threads : {1, 2, 8}) {
    ThresholdComparator cmp(&instance, ThresholdModel{0.02, 0.1}, 505);
    options.threads = threads;
    Result<MaxFindResult> result =
        MarcusTournamentMax(instance.AllElements(), &cmp, options);
    ASSERT_TRUE(result.ok());
    runs.push_back(*std::move(result));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].best, runs[0].best);
    EXPECT_EQ(runs[i].paid_comparisons, runs[0].paid_comparisons);
    EXPECT_EQ(runs[i].issued_comparisons, runs[0].issued_comparisons);
    EXPECT_EQ(runs[i].rounds, runs[0].rounds);
  }
}

TEST(DeterminismTest, VenetisLadderIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(333, 29);
  VenetisOptions options;
  options.votes_per_match = 5;

  std::vector<MaxFindResult> runs;
  for (int64_t threads : {1, 2, 8}) {
    ThresholdComparator cmp(&instance, ThresholdModel{0.02, 0.15}, 606);
    options.threads = threads;
    Result<MaxFindResult> result =
        VenetisLadderMax(instance.AllElements(), &cmp, options);
    ASSERT_TRUE(result.ok());
    runs.push_back(*std::move(result));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].best, runs[0].best);
    EXPECT_EQ(runs[i].paid_comparisons, runs[0].paid_comparisons);
    EXPECT_EQ(runs[i].issued_comparisons, runs[0].issued_comparisons);
  }
}

// Satellite of the metrics/trace PR: the trace is part of the determinism
// contract. The serial (threads=1) and parallel (threads=8) filter must
// produce bit-identical trace summaries, not just identical results.
TEST(DeterminismTest, FilterTraceBitIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(400, 43);
  const double delta = instance.DeltaForU(8);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);

  auto run = [&](int64_t threads) {
    ThresholdComparator naive(&instance, ThresholdModel{delta, 0.1}, 707);
    options.threads = threads;
    AlgoTrace trace;
    {
      ScopedTrace scope(&trace);
      Result<FilterResult> result =
          FilterCandidates(instance.AllElements(), options, &naive);
      CROWDMAX_CHECK(result.ok());
      // Every paid comparison must land in a trace cell.
      MetricsAuditor auditor(&trace);
      auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                               result->paid_comparisons);
      CROWDMAX_CHECK(auditor.Check().ok());
    }
    return trace.Summary();
  };

  const std::string serial = run(1);
  const std::string parallel = run(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

// Mixed serial/parallel accounting under injected faults: stats, fault
// tallies and the trace must all be identical at 1 and 8 threads, and the
// auditor must reconcile the tallies against the trace at both counts.
TEST(DeterminismTest, FaultyPipelineAccountingIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(90, 47);
  const double delta = instance.DeltaForU(5);

  struct Accounting {
    std::vector<ElementId> candidates;
    int64_t resilient_comparisons;
    int64_t injector_comparisons;
    int64_t injected_drops;
    int64_t injected_no_quorums;
    int64_t retried;
    int64_t degraded;
    std::string trace_summary;
  };
  auto run = [&](int64_t threads) {
    ThresholdComparator comparator(&instance, ThresholdModel{delta, 0.0},
                                   /*seed=*/48);
    auto pool = ParallelBatchExecutor::Create(&comparator, threads,
                                              /*seed=*/49, /*chunk_size=*/8);
    CROWDMAX_CHECK(pool.ok());
    InjectedFaultOptions inject;
    inject.drop_probability = 0.15;
    inject.no_quorum_probability = 0.1;
    inject.partial_votes = 1;
    inject.seed = 50;
    auto injector = FaultInjectingBatchExecutor::Create(pool->get(), inject);
    CROWDMAX_CHECK(injector.ok());
    ResilientOptions recovery;
    recovery.max_retries = 8;
    recovery.min_votes = 2;
    recovery.fallback = SmallerIdFallback;
    auto resilient =
        ResilientBatchExecutor::Create(injector->get(), recovery);
    CROWDMAX_CHECK(resilient.ok());

    AlgoTrace trace;
    Accounting out;
    {
      ScopedTrace scope(&trace);
      FilterOptions filter;
      filter.u_n = 5;
      Result<BatchedFilterResult> result = BatchedFilterCandidates(
          instance.AllElements(), filter, resilient->get());
      CROWDMAX_CHECK(result.ok());
      out.candidates = result->filter.candidates;

      MetricsAuditor auditor(&trace);
      auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                               (*resilient)->comparisons());
      auditor.ExpectDispatchedTotal((*injector)->comparisons());
      auditor.ExpectTaskFaults((*injector)->injected_drops(),
                               (*injector)->injected_no_quorums());
      const Status audit = auditor.Check();
      CROWDMAX_CHECK(audit.ok());
    }
    out.resilient_comparisons = (*resilient)->comparisons();
    out.injector_comparisons = (*injector)->comparisons();
    out.injected_drops = (*injector)->injected_drops();
    out.injected_no_quorums = (*injector)->injected_no_quorums();
    out.retried = (*resilient)->report().retried_tasks;
    out.degraded = (*resilient)->report().degraded_tasks;
    out.trace_summary = trace.Summary();
    return out;
  };

  const Accounting serial = run(1);
  const Accounting parallel = run(8);
  EXPECT_EQ(serial.candidates, parallel.candidates);
  EXPECT_EQ(serial.resilient_comparisons, parallel.resilient_comparisons);
  EXPECT_EQ(serial.injector_comparisons, parallel.injector_comparisons);
  EXPECT_EQ(serial.injected_drops, parallel.injected_drops);
  EXPECT_EQ(serial.injected_no_quorums, parallel.injected_no_quorums);
  EXPECT_EQ(serial.retried, parallel.retried);
  EXPECT_EQ(serial.degraded, parallel.degraded);
  EXPECT_EQ(serial.trace_summary, parallel.trace_summary);
  // The faults were real: the run exercised drops and retries.
  EXPECT_GT(serial.injected_drops, 0);
  EXPECT_GT(serial.retried, 0);
}

// The pipelined drive's headline determinism contract (DESIGN.md §11):
// over the same executor configuration, PipelinedFilterCandidates is
// bit-identical to BatchedFilterCandidates — candidates, paid/issued
// accounting, logical steps and the full trace — at executor threads
// {1, 8} and pipeline depths {1, 8}. The pipeline may only buy wall
// clock, never change a byte.
TEST(DeterminismTest, PipelinedFilterBitIdenticalToBatchedAcrossThreads) {
  Instance instance = MakeInstance(350, 59);
  const double delta = instance.DeltaForU(7);
  FilterOptions options;
  options.u_n = instance.CountWithin(delta);
  options.memoize = true;
  // Both sides run group-granular rounds, so the batch sequence (and with
  // it every seeded executor draw) lines up one to one.
  options.pipeline_groups = true;

  struct Accounting {
    std::vector<ElementId> candidates;
    int64_t paid;
    int64_t issued;
    int64_t rounds;
    int64_t executor_comparisons;
    int64_t executor_steps;
    std::string trace_summary;
  };
  auto fill = [](Accounting* out, const BatchedFilterResult& result,
                 BatchExecutor* executor) {
    out->candidates = result.filter.candidates;
    out->paid = result.filter.paid_comparisons;
    out->issued = result.filter.issued_comparisons;
    out->rounds = result.filter.rounds;
    out->executor_comparisons = executor->comparisons();
    out->executor_steps = executor->logical_steps();
  };

  auto run_batched = [&](int64_t threads) {
    ThresholdComparator worker(&instance, ThresholdModel{delta, 0.1},
                               /*seed=*/808);
    auto pool = ParallelBatchExecutor::Create(&worker, threads, /*seed=*/809,
                                              /*chunk_size=*/8);
    CROWDMAX_CHECK(pool.ok());
    AlgoTrace trace;
    Accounting out;
    {
      ScopedTrace scope(&trace);
      Result<BatchedFilterResult> result = BatchedFilterCandidates(
          instance.AllElements(), options, pool->get());
      CROWDMAX_CHECK(result.ok());
      fill(&out, *result, pool->get());
    }
    out.trace_summary = trace.Summary();
    return out;
  };
  auto run_pipelined = [&](int64_t threads, int64_t depth) {
    ThresholdComparator worker(&instance, ThresholdModel{delta, 0.1},
                               /*seed=*/808);
    auto pool = ParallelBatchExecutor::Create(&worker, threads, /*seed=*/809,
                                              /*chunk_size=*/8);
    CROWDMAX_CHECK(pool.ok());
    AsyncBatchAdapter async(pool->get());
    BatchedPipelineOptions pipeline;
    pipeline.max_in_flight = depth;
    AlgoTrace trace;
    Accounting out;
    {
      ScopedTrace scope(&trace);
      Result<BatchedFilterResult> result = PipelinedFilterCandidates(
          instance.AllElements(), options, &async, pipeline);
      CROWDMAX_CHECK(result.ok());
      fill(&out, *result, pool->get());
    }
    out.trace_summary = trace.Summary();
    return out;
  };

  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    const Accounting reference = run_batched(threads);
    EXPECT_FALSE(reference.trace_summary.empty());
    for (int64_t depth : {int64_t{1}, int64_t{8}}) {
      const Accounting piped = run_pipelined(threads, depth);
      const std::string at = "threads=" + std::to_string(threads) +
                             " depth=" + std::to_string(depth);
      EXPECT_EQ(piped.candidates, reference.candidates) << at;
      EXPECT_EQ(piped.paid, reference.paid) << at;
      EXPECT_EQ(piped.issued, reference.issued) << at;
      EXPECT_EQ(piped.rounds, reference.rounds) << at;
      EXPECT_EQ(piped.executor_comparisons, reference.executor_comparisons)
          << at;
      EXPECT_EQ(piped.executor_steps, reference.executor_steps) << at;
      EXPECT_EQ(piped.trace_summary, reference.trace_summary) << at;
    }
  }
}

// CI smoke for the pipelined faulty-platform path: a full run over a
// faulty, latency-simulating platform through the resilient stack and a
// depth-8 pipeline replays bit-identically from one seed tuple —
// candidates, fault stats, vote totals and the trace.
TEST(DeterminismTest, PipelinedFaultyPlatformReplaysFromOneSeed) {
  Instance instance = MakeInstance(120, 61);

  struct Replay {
    std::vector<ElementId> candidates;
    int64_t votes;
    int64_t discarded;
    int64_t votes_lost;
    int64_t unavailable;
    int64_t retried;
    int64_t latency_micros;
    std::string trace_summary;
  };
  auto run = [&] {
    OracleComparator crowd_model(&instance);
    PlatformOptions platform_options;
    platform_options.num_workers = 12;
    platform_options.spammer_fraction = 0.0;
    platform_options.honest_slip_probability = 0.0;
    platform_options.gold_task_probability = 0.0;
    platform_options.seed = 63;
    platform_options.fault.abandon_probability = 0.1;
    platform_options.fault.unavailable_probability = 0.05;
    platform_options.fault.min_quorum = 2;
    platform_options.fault.seed = 64;
    platform_options.latency.base_micros = 100;
    platform_options.latency.jitter_micros = 40;
    platform_options.latency.seed = 65;
    auto platform = CrowdPlatform::Create(&crowd_model, &instance, {},
                                          platform_options);
    CROWDMAX_CHECK(platform.ok());
    auto executor =
        PlatformBatchExecutor::Create(platform->get(), /*votes_per_task=*/3);
    CROWDMAX_CHECK(executor.ok());
    ResilientOptions recovery;
    recovery.max_retries = 6;
    recovery.fallback = SmallerIdFallback;
    auto resilient = ResilientBatchExecutor::Create(executor->get(), recovery);
    CROWDMAX_CHECK(resilient.ok());
    AsyncBatchAdapter async(resilient->get());

    FilterOptions filter;
    filter.u_n = 5;
    filter.memoize = true;
    filter.pipeline_groups = true;
    BatchedPipelineOptions pipeline;
    pipeline.max_in_flight = 8;
    AlgoTrace trace;
    Replay out;
    {
      ScopedTrace scope(&trace);
      Result<BatchedFilterResult> result = PipelinedFilterCandidates(
          instance.AllElements(), filter, &async, pipeline);
      CROWDMAX_CHECK(result.ok());
      out.candidates = result->filter.candidates;
    }
    out.votes = (*executor)->executor_votes();
    out.discarded = (*executor)->executor_discarded_votes();
    out.votes_lost = (*platform)->fault_stats().votes_lost();
    out.unavailable = (*platform)->fault_stats().unavailable_errors;
    out.retried = (*resilient)->report().retried_tasks;
    out.latency_micros = (*platform)->total_latency_micros();
    out.trace_summary = trace.Summary();
    return out;
  };

  const Replay first = run();
  const Replay second = run();
  EXPECT_EQ(first.candidates, second.candidates);
  EXPECT_EQ(first.votes, second.votes);
  EXPECT_EQ(first.discarded, second.discarded);
  EXPECT_EQ(first.votes_lost, second.votes_lost);
  EXPECT_EQ(first.unavailable, second.unavailable);
  EXPECT_EQ(first.retried, second.retried);
  EXPECT_EQ(first.latency_micros, second.latency_micros);
  EXPECT_EQ(first.trace_summary, second.trace_summary);
  // The scenario was real: faults fired, recovery worked, latency accrued.
  EXPECT_GT(first.votes_lost + first.unavailable, 0);
  EXPECT_GT(first.latency_micros, 0);
  EXPECT_FALSE(first.candidates.empty());
}

// Engine-executed batched top-k: results, logical step counts, per-class
// paid accounting and the trace must be identical at 1 and 8 executor
// threads, and the auditor must reconcile at both counts.
TEST(DeterminismTest, BatchedTopKAccountingIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(300, 53);
  const double delta_n = instance.DeltaForU(8);
  const double delta_e = instance.DeltaForU(2);

  struct Accounting {
    std::vector<ElementId> top;
    std::vector<ElementId> candidates;
    int64_t paid_naive;
    int64_t paid_expert;
    int64_t naive_steps;
    int64_t expert_steps;
    std::string trace_summary;
  };
  auto run = [&](int64_t threads) {
    ThresholdComparator naive(&instance, ThresholdModel{delta_n, 0.1}, 54);
    ThresholdComparator expert(&instance, ThresholdModel{delta_e, 0.0}, 55);
    auto naive_pool = ParallelBatchExecutor::Create(&naive, threads,
                                                    /*seed=*/56,
                                                    /*chunk_size=*/8);
    auto expert_pool = ParallelBatchExecutor::Create(&expert, threads,
                                                     /*seed=*/57,
                                                     /*chunk_size=*/8);
    CROWDMAX_CHECK(naive_pool.ok());
    CROWDMAX_CHECK(expert_pool.ok());

    TopKOptions options;
    options.k = 4;
    options.filter.u_n = instance.CountWithin(delta_n);

    AlgoTrace trace;
    Accounting out;
    {
      ScopedTrace scope(&trace);
      Result<BatchedTopKResult> result = BatchedFindTopKWithExperts(
          instance.AllElements(), naive_pool->get(), expert_pool->get(),
          options);
      CROWDMAX_CHECK(result.ok());
      CROWDMAX_CHECK(!result->partial);
      out.top = result->result.top;
      out.candidates = result->result.candidates;
      out.paid_naive = result->result.paid.naive;
      out.paid_expert = result->result.paid.expert;
      out.naive_steps = result->naive_steps;
      out.expert_steps = result->expert_steps;

      MetricsAuditor auditor(&trace);
      auditor.ExpectPaidStats(result->result.paid);
      auditor.ExpectDispatchedTotal((*naive_pool)->comparisons() +
                                    (*expert_pool)->comparisons());
      const Status audit = auditor.Check();
      CROWDMAX_CHECK(audit.ok());
    }
    out.trace_summary = trace.Summary();
    return out;
  };

  const Accounting serial = run(1);
  const Accounting parallel = run(8);
  EXPECT_EQ(serial.top, parallel.top);
  EXPECT_EQ(serial.candidates, parallel.candidates);
  EXPECT_EQ(serial.paid_naive, parallel.paid_naive);
  EXPECT_EQ(serial.paid_expert, parallel.paid_expert);
  EXPECT_EQ(serial.naive_steps, parallel.naive_steps);
  EXPECT_EQ(serial.expert_steps, parallel.expert_steps);
  EXPECT_EQ(serial.trace_summary, parallel.trace_summary);
  EXPECT_EQ(static_cast<int64_t>(serial.top.size()), 4);
  // One expert all-play-all batch.
  EXPECT_EQ(serial.expert_steps, 1);
}

// Engine-executed batched multilevel cascade, same contract: thread count
// of the executor pools is unobservable in results, steps, accounting and
// the trace.
TEST(DeterminismTest, BatchedMultilevelAccountingIdenticalAcrossThreadCounts) {
  Instance instance = MakeInstance(260, 59);
  const double delta_mid = instance.DeltaForU(6);
  const double delta_expert = instance.DeltaForU(2);

  struct Accounting {
    ElementId best;
    std::vector<int64_t> paid_per_class;
    std::vector<int64_t> steps_per_class;
    std::vector<int64_t> candidates_per_level;
    double total_cost;
    std::string trace_summary;
  };
  auto run = [&](int64_t threads) {
    ThresholdComparator mid(&instance, ThresholdModel{delta_mid, 0.05}, 60);
    ThresholdComparator expert(&instance,
                               ThresholdModel{delta_expert, 0.0}, 61);
    auto mid_pool = ParallelBatchExecutor::Create(&mid, threads, /*seed=*/62,
                                                  /*chunk_size=*/8);
    auto expert_pool = ParallelBatchExecutor::Create(&expert, threads,
                                                     /*seed=*/63,
                                                     /*chunk_size=*/8);
    CROWDMAX_CHECK(mid_pool.ok());
    CROWDMAX_CHECK(expert_pool.ok());

    std::vector<BatchedWorkerClassSpec> classes;
    classes.push_back(
        {mid_pool->get(), instance.CountWithin(delta_mid), 1.0});
    classes.push_back({expert_pool->get(), 1, 25.0});

    AlgoTrace trace;
    Accounting out;
    {
      ScopedTrace scope(&trace);
      Result<BatchedMultilevelResult> result = BatchedFindMaxMultilevel(
          instance.AllElements(), classes, MultilevelOptions{});
      CROWDMAX_CHECK(result.ok());
      CROWDMAX_CHECK(!result->partial);
      out.best = result->result.best;
      out.paid_per_class = result->result.paid_per_class;
      out.steps_per_class = result->steps_per_class;
      out.candidates_per_level = result->result.candidates_per_level;
      out.total_cost = result->result.total_cost;

      MetricsAuditor auditor(&trace);
      auditor.ExpectDispatched(TraceWorkerClass::kNaive,
                               result->result.paid_per_class[0]);
      auditor.ExpectDispatched(TraceWorkerClass::kExpert,
                               result->result.paid_per_class[1]);
      const Status audit = auditor.Check();
      CROWDMAX_CHECK(audit.ok());
    }
    out.trace_summary = trace.Summary();
    return out;
  };

  const Accounting serial = run(1);
  const Accounting parallel = run(8);
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.paid_per_class, parallel.paid_per_class);
  EXPECT_EQ(serial.steps_per_class, parallel.steps_per_class);
  EXPECT_EQ(serial.candidates_per_level, parallel.candidates_per_level);
  EXPECT_EQ(serial.total_cost, parallel.total_cost);
  EXPECT_EQ(serial.trace_summary, parallel.trace_summary);
  EXPECT_EQ(serial.best, instance.MaxElement());
}

TEST(DeterminismTest, ParallelPathRejectsUnforkableComparator) {
  Instance instance = MakeInstance(64, 31);
  UnforkableComparator cmp(&instance);

  FilterOptions filter;
  filter.u_n = 2;
  filter.threads = 2;
  EXPECT_FALSE(FilterCandidates(instance.AllElements(), filter, &cmp).ok());

  MarcusOptions marcus;
  marcus.threads = 2;
  EXPECT_FALSE(
      MarcusTournamentMax(instance.AllElements(), &cmp, marcus).ok());

  VenetisOptions venetis;
  venetis.threads = 2;
  EXPECT_FALSE(VenetisLadderMax(instance.AllElements(), &cmp, venetis).ok());

  EXPECT_FALSE(ParallelBatchExecutor::Create(&cmp, 2, /*seed=*/1).ok());

  // Serial paths still work fine with the same comparator.
  filter.threads = 0;
  EXPECT_TRUE(FilterCandidates(instance.AllElements(), filter, &cmp).ok());
}

TEST(DeterminismTest, NegativeThreadsRejected) {
  Instance instance = MakeInstance(32, 37);
  OracleComparator cmp(&instance);
  FilterOptions filter;
  filter.u_n = 2;
  filter.threads = -1;
  EXPECT_FALSE(FilterCandidates(instance.AllElements(), filter, &cmp).ok());
}

TEST(DeterminismDeathTest, MemoizingComparatorForkCheckFails) {
  Instance instance = MakeInstance(16, 41);
  OracleComparator oracle(&instance);
  MemoizingComparator memo(&oracle);
  EXPECT_DEATH_IF_SUPPORTED((void)memo.Fork(1), "not thread-safe");
}

// The engine's batch vote generation (DESIGN.md §14) is an internal
// optimization: with it on or off, a full filter run over a stochastic
// worker must be bit-identical — candidates, rounds, paid/issued counts,
// cache hits, and the comparator's serialized state (counter + RNG stream
// position + sticky tables) — at every backend and thread count.
TEST(DeterminismTest, BatchGenerationBitIdenticalToPerCall) {
  Instance instance = MakeInstance(300, 47);
  FilterOptions options;
  options.u_n = 5;
  options.memoize = true;

  ThresholdComparator::Options model;
  model.model = ThresholdModel{instance.DeltaForU(5), 0.15};
  model.tie_policy = TiePolicy::kPersistentArbitrary;

  struct BatchRun {
    FilterEngineRun run;
    int64_t cache_hits = 0;
    std::string comparator_state;
  };
  auto run_once = [&](int64_t threads, bool batch_generation) {
    ThresholdComparator cmp(&instance, model, /*seed=*/4711);
    std::unique_ptr<RoundEngine> engine;
    if (threads == 0) {
      engine = RoundEngine::CreateSerial(&cmp, options.memoize);
    } else {
      Result<std::unique_ptr<RoundEngine>> parallel =
          RoundEngine::CreateParallel(&cmp, threads, /*seed=*/4712,
                                      options.memoize);
      CROWDMAX_CHECK(parallel.ok());
      engine = std::move(parallel).value();
    }
    engine->set_batch_generation(batch_generation);
    Result<FilterEngineRun> run =
        RunFilterOnEngine(instance.AllElements(), options, engine.get());
    CROWDMAX_CHECK(run.ok());
    CheckpointWriter writer;
    CROWDMAX_CHECK(cmp.SaveState(&writer).ok());
    return BatchRun{*std::move(run), engine->cache_hits(), writer.Take()};
  };

  for (int64_t threads : {int64_t{0}, int64_t{1}, int64_t{8}}) {
    const BatchRun percall = run_once(threads, /*batch_generation=*/false);
    const BatchRun batch = run_once(threads, /*batch_generation=*/true);
    EXPECT_EQ(batch.run.filter.candidates, percall.run.filter.candidates)
        << "threads=" << threads;
    EXPECT_EQ(batch.run.filter.rounds, percall.run.filter.rounds)
        << "threads=" << threads;
    EXPECT_EQ(batch.run.filter.paid_comparisons,
              percall.run.filter.paid_comparisons)
        << "threads=" << threads;
    EXPECT_EQ(batch.run.filter.issued_comparisons,
              percall.run.filter.issued_comparisons)
        << "threads=" << threads;
    EXPECT_EQ(batch.cache_hits, percall.cache_hits) << "threads=" << threads;
    EXPECT_EQ(batch.comparator_state, percall.comparator_state)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace crowdmax
