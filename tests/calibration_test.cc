// Tests for worker calibration (threshold detection and delta estimation).

#include <vector>

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(CalibrationTest, Validation) {
  Instance tiny({1.0});
  Instance flat({1.0, 1.0, 1.0});
  Result<Instance> gold = UniformInstance(20, /*seed=*/1);
  ASSERT_TRUE(gold.ok());
  OracleComparator oracle(&*gold);

  CalibrationOptions options;
  EXPECT_FALSE(CalibrateWorkers(tiny, &oracle, options).ok());
  EXPECT_FALSE(CalibrateWorkers(flat, &oracle, options).ok());

  CalibrationOptions even_votes;
  even_votes.votes_per_pair = 4;
  EXPECT_FALSE(CalibrateWorkers(*gold, &oracle, even_votes).ok());
  CalibrationOptions one_bucket;
  one_bucket.num_buckets = 1;
  EXPECT_FALSE(CalibrateWorkers(*gold, &oracle, one_bucket).ok());
  CalibrationOptions no_pairs;
  no_pairs.pairs_per_bucket = 0;
  EXPECT_FALSE(CalibrateWorkers(*gold, &oracle, no_pairs).ok());
  CalibrationOptions bad_convergence;
  bad_convergence.convergence_accuracy = 0.4;
  EXPECT_FALSE(CalibrateWorkers(*gold, &oracle, bad_convergence).ok());
}

TEST(CalibrationTest, OracleWorkersShowNoThreshold) {
  Result<Instance> gold = UniformInstance(60, /*seed=*/2);
  ASSERT_TRUE(gold.ok());
  OracleComparator oracle(&*gold);
  Result<CalibrationReport> report =
      CalibrateWorkers(*gold, &oracle, {});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->threshold_detected);
  EXPECT_DOUBLE_EQ(report->estimated_delta, 0.0);
  for (const CalibrationBucket& bucket : report->buckets) {
    if (bucket.pairs > 0) {
      EXPECT_DOUBLE_EQ(bucket.single_vote_accuracy, 1.0);
      EXPECT_DOUBLE_EQ(bucket.majority_accuracy, 1.0);
    }
  }
}

TEST(CalibrationTest, RecoversThresholdWithinOneBucket) {
  // Workers with a known absolute threshold: the estimated delta must land
  // within one bucket width of the truth.
  for (uint64_t seed : {3u, 4u, 5u}) {
    Result<Instance> gold = UniformInstance(80, seed, 0.0, 1.0);
    ASSERT_TRUE(gold.ok());
    const double true_delta = 0.3;
    ThresholdComparator worker(&*gold, ThresholdModel{true_delta, 0.0},
                               seed + 10);
    CalibrationOptions options;
    options.num_buckets = 10;
    options.seed = seed + 20;
    Result<CalibrationReport> report =
        CalibrateWorkers(*gold, &worker, options);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->threshold_detected);
    // Max distance ~1.0, so buckets are ~0.1 wide.
    const double bucket_width = report->buckets[0].max_distance;
    EXPECT_NEAR(report->estimated_delta, true_delta, bucket_width + 1e-9);
  }
}

TEST(CalibrationTest, BucketAccuraciesReflectTheModel) {
  Result<Instance> gold = UniformInstance(80, /*seed=*/6, 0.0, 1.0);
  ASSERT_TRUE(gold.ok());
  ThresholdComparator worker(&*gold, ThresholdModel{0.25, 0.0}, /*seed=*/7);
  CalibrationOptions options;
  options.num_buckets = 8;
  Result<CalibrationReport> report = CalibrateWorkers(*gold, &worker, options);
  ASSERT_TRUE(report.ok());

  for (const CalibrationBucket& bucket : report->buckets) {
    if (bucket.pairs == 0) continue;
    if (bucket.min_distance >= 0.25) {
      // Fully above the threshold: perfect with epsilon = 0.
      EXPECT_DOUBLE_EQ(bucket.single_vote_accuracy, 1.0);
      EXPECT_DOUBLE_EQ(bucket.majority_accuracy, 1.0);
    }
    if (bucket.max_distance <= 0.25) {
      // Fully below: a fair coin; majorities stay near 0.5.
      EXPECT_LT(bucket.majority_accuracy, 0.85);
    }
  }
}

TEST(CalibrationTest, ConvergentNoisyWorkersShowNoThresholdAtHighVotes) {
  // A probabilistic worker with moderate noise everywhere: enough votes
  // push every bucket above the convergence level, so no threshold.
  Result<Instance> gold = UniformInstance(60, /*seed=*/8, 0.0, 1.0);
  ASSERT_TRUE(gold.ok());
  ThresholdComparator worker(&*gold, ThresholdModel{0.0, 0.25}, /*seed=*/9);
  CalibrationOptions options;
  options.votes_per_pair = 41;
  Result<CalibrationReport> report = CalibrateWorkers(*gold, &worker, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->threshold_detected);
}

TEST(CalibrationTest, EstimatedDeltaDrivesTheFilterCorrectly) {
  // End-to-end: calibrate, derive u_n from the estimated delta, run
  // Algorithm 1-style filtering and confirm the maximum survives.
  Result<Instance> gold = UniformInstance(100, /*seed=*/10);
  Result<Instance> data = UniformInstance(500, /*seed=*/11);
  ASSERT_TRUE(gold.ok() && data.ok());
  const double true_delta = 0.05;

  ThresholdComparator gold_worker(&*gold, ThresholdModel{true_delta, 0.0},
                                  /*seed=*/12);
  CalibrationOptions options;
  options.num_buckets = 12;
  Result<CalibrationReport> report =
      CalibrateWorkers(*gold, &gold_worker, options);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->threshold_detected);
  // Conservative (over)estimate is fine: u_n from the estimated delta.
  const int64_t u_n = data->CountWithin(report->estimated_delta);
  EXPECT_GE(u_n, data->CountWithin(true_delta));
}

}  // namespace
}  // namespace crowdmax
