// Tests for the query layer: the cost-based planner and the query engine.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/service.h"

namespace crowdmax {
namespace {

// ---------------------------------------------------------------- Planner.

TEST(PlannerTest, Validation) {
  PlannerInput input;
  input.n = 0;
  input.u_n = 1;
  EXPECT_FALSE(PlanMaxQuery(input).ok());
  input.n = 100;
  input.u_n = 0;
  EXPECT_FALSE(PlanMaxQuery(input).ok());
  input.u_n = 101;
  EXPECT_FALSE(PlanMaxQuery(input).ok());
  input.u_n = 10;
  input.prices.naive_cost = -1.0;
  EXPECT_FALSE(PlanMaxQuery(input).ok());
}

TEST(PlannerTest, CheapExpertsFavorExpertOnly) {
  PlannerInput input;
  input.n = 5000;
  input.u_n = 10;
  input.prices = CostModel{1.0, 2.0};  // Ratio 2 << crossover.
  Result<MaxQueryPlan> plan = PlanMaxQuery(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, MaxStrategy::kExpertOnly);
  EXPECT_LT(plan->expert_only_cost, plan->two_phase_cost);
}

TEST(PlannerTest, ExpensiveExpertsFavorTwoPhase) {
  PlannerInput input;
  input.n = 5000;
  input.u_n = 10;
  input.prices = CostModel{1.0, 200.0};
  Result<MaxQueryPlan> plan = PlanMaxQuery(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->strategy, MaxStrategy::kTwoPhase);
  EXPECT_LT(plan->two_phase_cost, plan->expert_only_cost);
}

TEST(PlannerTest, NaiveOnlyRequiresOptIn) {
  PlannerInput input;
  input.n = 5000;
  input.u_n = 10;
  input.prices = CostModel{1.0, 50.0};
  Result<MaxQueryPlan> strict = PlanMaxQuery(input);
  ASSERT_TRUE(strict.ok());
  EXPECT_NE(strict->strategy, MaxStrategy::kNaiveOnly);
  EXPECT_TRUE(std::isinf(strict->naive_only_cost));

  input.allow_naive_accuracy = true;
  Result<MaxQueryPlan> loose = PlanMaxQuery(input);
  ASSERT_TRUE(loose.ok());
  // Naive-only is by far the cheapest once allowed.
  EXPECT_EQ(loose->strategy, MaxStrategy::kNaiveOnly);
}

TEST(PlannerTest, WorstCaseModeUsesTheoryBounds) {
  PlannerInput input;
  input.n = 1000;
  input.u_n = 10;
  input.prices = CostModel{1.0, 10.0};
  input.worst_case = true;
  Result<MaxQueryPlan> plan = PlanMaxQuery(input);
  ASSERT_TRUE(plan.ok());
  // 4*n*u_n = 40000 naive plus the phase-2 bound.
  EXPECT_GE(plan->two_phase_cost, 40000.0);
  // Worst-case expert-only: 2*n^1.5 * c_e.
  EXPECT_NEAR(plan->expert_only_cost,
              2.0 * std::pow(1000.0, 1.5) * 10.0, 10.0 * 10.0);
  // At ratio 10 and these sizes the worst-case plan is two-phase.
  EXPECT_EQ(plan->strategy, MaxStrategy::kTwoPhase);
}

TEST(PlannerTest, PredictionsMatchMeasuredScale) {
  // Sanity: the average-case predictions should land within 2x of the
  // measured values recorded in EXPERIMENTS.md (n=5000, u_n=10: ~130k
  // filter comparisons; single-class 2MF: ~8.4k).
  EXPECT_NEAR(PredictFilterComparisons(5000, 10, false), 130000.0, 65000.0);
  EXPECT_NEAR(PredictTwoMaxFindComparisons(5000, false), 8400.0, 4200.0);
}

TEST(PlannerTest, ExplanationNamesTheChoice) {
  PlannerInput input;
  input.n = 100;
  input.u_n = 5;
  input.prices = CostModel{1.0, 100.0};
  Result<MaxQueryPlan> plan = PlanMaxQuery(input);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->explanation.find(MaxStrategyName(plan->strategy)),
            std::string::npos);
  EXPECT_NE(plan->explanation.find("u_n=5"), std::string::npos);
}

TEST(PlannerTest, StrategyNamesAreDistinct) {
  EXPECT_NE(MaxStrategyName(MaxStrategy::kTwoPhase),
            MaxStrategyName(MaxStrategy::kExpertOnly));
  EXPECT_NE(MaxStrategyName(MaxStrategy::kExpertOnly),
            MaxStrategyName(MaxStrategy::kNaiveOnly));
}

// ----------------------------------------------------------------- Engine.

TEST(EngineTest, CreateValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  CrowdQueryEngineOptions options;
  EXPECT_FALSE(CrowdQueryEngine::Create(options).ok());
  options.naive = &oracle;
  EXPECT_FALSE(CrowdQueryEngine::Create(options).ok());
  options.expert = &oracle;
  EXPECT_TRUE(CrowdQueryEngine::Create(options).ok());
  options.prices.expert_cost = -5.0;
  EXPECT_FALSE(CrowdQueryEngine::Create(options).ok());
}

TEST(EngineTest, MaxExecutesThePlannedStrategy) {
  Result<Instance> instance = UniformInstance(800, /*seed=*/5);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(10);
  const double delta_e = instance->DeltaForU(2);
  const int64_t u_n = instance->CountWithin(delta_n);
  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0}, 6);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0}, 7);

  // Expensive experts: the engine should run the two-phase plan and bill
  // mostly naive comparisons.
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  options.prices = CostModel{1.0, 100.0};
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  Result<MaxQueryAnswer> answer = engine->Max(instance->AllElements(), u_n);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->plan.strategy, MaxStrategy::kTwoPhase);
  EXPECT_GT(answer->paid.naive, 0);
  EXPECT_GT(answer->paid.expert, 0);
  EXPECT_LE(instance->Distance(answer->best, instance->MaxElement()),
            2.0 * delta_e + 1e-12);
  EXPECT_DOUBLE_EQ(
      answer->actual_cost,
      options.prices.Cost(answer->paid.naive, answer->paid.expert));

  // Cheap experts: expert-only plan, zero naive comparisons.
  ThresholdComparator naive2(&*instance, ThresholdModel{delta_n, 0.0}, 8);
  ThresholdComparator expert2(&*instance, ThresholdModel{delta_e, 0.0}, 9);
  options.naive = &naive2;
  options.expert = &expert2;
  options.prices = CostModel{1.0, 2.0};
  Result<CrowdQueryEngine> engine2 = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine2.ok());
  Result<MaxQueryAnswer> answer2 = engine2->Max(instance->AllElements(), u_n);
  ASSERT_TRUE(answer2.ok());
  EXPECT_EQ(answer2->plan.strategy, MaxStrategy::kExpertOnly);
  EXPECT_EQ(answer2->paid.naive, 0);
}

TEST(EngineTest, MaxWithNaiveOptInRunsNaiveOnly) {
  Result<Instance> instance = UniformInstance(300, /*seed=*/11);
  ASSERT_TRUE(instance.ok());
  OracleComparator naive(&*instance);
  OracleComparator expert(&*instance);
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  options.prices = CostModel{1.0, 50.0};
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  Result<MaxQueryAnswer> answer = engine->Max(
      instance->AllElements(), /*u_n=*/5, /*allow_naive_accuracy=*/true);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->plan.strategy, MaxStrategy::kNaiveOnly);
  EXPECT_EQ(answer->paid.expert, 0);
  EXPECT_EQ(answer->best, instance->MaxElement());  // Oracle workers.
}

TEST(EngineTest, TopKQuery) {
  Result<Instance> instance = UniformInstance(400, /*seed=*/13);
  ASSERT_TRUE(instance.ok());
  OracleComparator naive(&*instance);
  OracleComparator expert(&*instance);
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  Result<TopKQueryAnswer> answer =
      engine->TopK(instance->AllElements(), /*u_n=*/4, /*k=*/5);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->top.size(), 5u);
  for (size_t j = 0; j < answer->top.size(); ++j) {
    EXPECT_EQ(instance->Rank(answer->top[j]), static_cast<int64_t>(j) + 1);
  }
  EXPECT_GT(answer->actual_cost, 0.0);
}

TEST(EngineTest, AboveQueryValidation) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  CrowdQueryEngineOptions options;
  options.naive = &oracle;
  options.expert = &oracle;
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  EXPECT_FALSE(engine->Above({}, 0).ok());
  EXPECT_FALSE(engine->Above({0, 1}, 1).ok());  // Anchor among items.
  AboveQueryOptions even_votes;
  even_votes.votes_per_item = 2;
  EXPECT_FALSE(engine->Above({0, 2}, 1, even_votes).ok());
}

TEST(EngineTest, AboveQueryPerfectWithOracles) {
  Result<Instance> instance = UniformInstance(100, /*seed=*/21);
  ASSERT_TRUE(instance.ok());
  OracleComparator oracle(&*instance);
  CrowdQueryEngineOptions options;
  options.naive = &oracle;
  options.expert = &oracle;
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  const ElementId anchor = 0;
  std::vector<ElementId> items;
  for (ElementId e = 1; e < instance->size(); ++e) items.push_back(e);
  Result<AboveQueryAnswer> answer = engine->Above(items, anchor);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->escalated.empty());
  for (ElementId e : answer->above) {
    EXPECT_GT(instance->value(e), instance->value(anchor));
  }
  for (ElementId e : answer->below) {
    EXPECT_LT(instance->value(e), instance->value(anchor));
  }
  EXPECT_EQ(answer->above.size() + answer->below.size(), items.size());
}

TEST(EngineTest, AboveQueryEscalatesBorderlineItemsToExperts) {
  // Values straddling an anchor, several of them within the naive
  // threshold; the expert resolves every escalated item exactly.
  std::vector<double> values = {0.50};  // Anchor.
  for (int i = 1; i <= 10; ++i) values.push_back(0.50 + 0.002 * i);  // Hard.
  for (int i = 1; i <= 10; ++i) values.push_back(0.50 - 0.002 * i);  // Hard.
  for (int i = 1; i <= 10; ++i) values.push_back(0.90 + 0.001 * i);  // Easy.
  for (int i = 1; i <= 10; ++i) values.push_back(0.10 - 0.001 * i);  // Easy.
  Instance instance(values);

  ThresholdComparator naive(&instance, ThresholdModel{0.05, 0.0}, /*seed=*/3);
  OracleComparator expert(&instance);
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  options.prices = CostModel{1.0, 30.0};
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  std::vector<ElementId> items;
  for (ElementId e = 1; e < instance.size(); ++e) items.push_back(e);
  AboveQueryOptions above_options;
  above_options.votes_per_item = 7;
  Result<AboveQueryAnswer> answer = engine->Above(items, 0, above_options);
  ASSERT_TRUE(answer.ok());

  // All classifications correct: easy ones by unanimity (w.h.p.), hard
  // ones by the expert. Allow the rare unanimity fluke (p = 2^-6 per hard
  // item) to miss at most one item.
  int64_t wrong = 0;
  for (ElementId e : answer->above) {
    if (instance.value(e) < instance.value(0)) ++wrong;
  }
  for (ElementId e : answer->below) {
    if (instance.value(e) > instance.value(0)) ++wrong;
  }
  EXPECT_LE(wrong, 1);
  // Most of the 20 hard items must have been escalated.
  EXPECT_GE(answer->escalated.size(), 15u);
  EXPECT_EQ(answer->paid.expert,
            static_cast<int64_t>(answer->escalated.size()));
  EXPECT_EQ(answer->paid.naive,
            7 * static_cast<int64_t>(items.size()));
}

TEST(EngineTest, AboveQueryWithoutRefinementUsesNaiveMajority) {
  Instance instance({0.5, 0.501, 0.9});
  ThresholdComparator naive(&instance, ThresholdModel{0.05, 0.0}, /*seed=*/5);
  OracleComparator expert(&instance);
  CrowdQueryEngineOptions options;
  options.naive = &naive;
  options.expert = &expert;
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());

  AboveQueryOptions above_options;
  above_options.expert_refine = false;
  Result<AboveQueryAnswer> answer =
      engine->Above({1, 2}, 0, above_options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->paid.expert, 0);
  // Element 2 is easy and must be classified above.
  EXPECT_NE(std::find(answer->above.begin(), answer->above.end(), 2),
            answer->above.end());
}

// Planner regression: a per-query max_comparisons budget threaded through
// QueryService charges the same paid naive comparisons — and trips the
// same budget stop — as the standalone RoundEngine budget gate driving the
// identical filter (same seed, same executor stack shape). The gate
// charges at round boundaries, so exact equality is the assertion.
TEST(PlannerTest, ServiceBudgetMatchesStandaloneRoundEngineGate) {
  Result<Instance> instance = UniformInstance(90, 17);
  ASSERT_TRUE(instance.ok());
  const double delta_naive = instance->DeltaForU(4);
  const double delta_expert = instance->DeltaForU(1);

  QueryServiceOptions options;
  options.shards = {{&*instance, delta_naive, delta_expert}};

  QuerySpec spec;
  spec.kind = QueryKind::kMax;
  spec.u_n = 4;
  spec.seed = 321;
  spec.prices = CostModel{1.0, 100.0};  // Forces the two-phase plan.
  spec.max_comparisons = 120;           // Well below the filter's need.

  Result<QueryOutcome> outcome = QueryService::ExecuteAlone(options, spec);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->status.ok()) << outcome->status.ToString();
  ASSERT_EQ(outcome->plan.strategy, MaxStrategy::kTwoPhase);

  // The standalone baseline: the same hermetic naive stream driving the
  // same budget-gated filter directly on the batched engine.
  ThresholdComparator naive(&*instance, ThresholdModel{delta_naive, 0.0},
                            QueryService::StreamSeed(spec.seed, 1));
  ComparatorBatchExecutor executor(&naive);
  FilterOptions filter;
  filter.u_n = spec.u_n;
  filter.memoize = true;
  filter.max_comparisons = spec.max_comparisons;
  Result<BatchedFilterResult> baseline = BatchedFilterCandidates(
      instance->AllElements(), filter, &executor);
  ASSERT_TRUE(baseline.ok());

  EXPECT_TRUE(baseline->filter.stopped_by_budget);
  EXPECT_TRUE(outcome->stopped_by_budget);
  EXPECT_EQ(outcome->paid.naive, baseline->filter.paid_comparisons);
  EXPECT_LE(outcome->paid.naive, spec.max_comparisons);
}

TEST(EngineTest, EmptyItemSetRejected) {
  Instance instance({1.0});
  OracleComparator oracle(&instance);
  CrowdQueryEngineOptions options;
  options.naive = &oracle;
  options.expert = &oracle;
  Result<CrowdQueryEngine> engine = CrowdQueryEngine::Create(options);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Max({}, 1).ok());
}

}  // namespace
}  // namespace crowdmax
