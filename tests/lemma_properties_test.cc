// Property tests for the paper's Phase-1 guarantees (Lemmas 1-3), checked
// over randomized instances — a sweep of n, u_n, and value-gap shapes —
// against every adversarial tie policy and against threshold workers, on
// the serial path, the parallel path, and with both Appendix-A
// optimizations enabled:
//
//  * Lemma 2 (via Lemma 1): the true maximum survives filtering — below
//    the threshold the answer is completely arbitrary, so this must hold
//    even when an adversary resolves every hard comparison.
//  * Lemma 3 size bound: at most 2*u_n - 1 candidates survive (when the
//    input had at least 2*u_n elements to begin with).
//  * Lemma 3 cost bound: at most 4*n*u_n naive comparisons are issued.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

struct Variant {
  const char* name;
  bool memoize;
  bool global_loss_counter;
  int64_t threads;
};

constexpr Variant kVariants[] = {
    {"serial", false, false, 0},
    {"serial+opts", true, true, 0},
    {"parallel", false, false, 2},
    {"parallel+opts", true, true, 2},
};

bool Contains(const std::vector<ElementId>& set, ElementId e) {
  return std::find(set.begin(), set.end(), e) != set.end();
}

void CheckLemmaGuarantees(const Instance& instance, Comparator* naive,
                          const FilterOptions& options,
                          const std::string& context) {
  const int64_t n = instance.size();
  Result<FilterResult> result =
      FilterCandidates(instance.AllElements(), options, naive);
  ASSERT_TRUE(result.ok()) << context;

  // Lemma 2: the maximum always survives (a correct u_n never produces an
  // empty round, so no degraded-mode escape hatch fires).
  EXPECT_FALSE(result->hit_empty_round) << context;
  EXPECT_TRUE(Contains(result->candidates, instance.MaxElement())) << context;

  // Lemma 3 size bound, applicable once the loop had anything to do.
  if (n >= 2 * options.u_n) {
    EXPECT_LE(static_cast<int64_t>(result->candidates.size()),
              2 * options.u_n - 1)
        << context;
  }

  // Lemma 3 cost bound on naive comparisons.
  EXPECT_LE(result->paid_comparisons,
            FilterComparisonUpperBound(n, options.u_n))
      << context;
  EXPECT_LE(result->paid_comparisons, result->issued_comparisons) << context;
}

TEST(LemmaPropertiesTest, GuaranteesHoldUnderEveryAdversary) {
  // The adversary decides every comparison of an indistinguishable pair;
  // Lemmas 1-3 promise the guarantees regardless of those decisions.
  constexpr AdversarialPolicy kPolicies[] = {
      AdversarialPolicy::kFirstLoses, AdversarialPolicy::kLowerValueWins,
      AdversarialPolicy::kHigherValueWins};
  for (int64_t n : {40, 120, 400}) {
    for (int64_t u_target : {2, 5, 11}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        Result<Instance> instance = UniformInstance(n, seed);
        ASSERT_TRUE(instance.ok());
        const double delta = instance->DeltaForU(u_target);
        const int64_t u_n = instance->CountWithin(delta);
        for (AdversarialPolicy policy : kPolicies) {
          for (const Variant& variant : kVariants) {
            AdversarialComparator adversary(&*instance, delta, policy);
            FilterOptions options;
            options.u_n = u_n;
            options.memoize = variant.memoize;
            options.global_loss_counter = variant.global_loss_counter;
            options.threads = variant.threads;
            CheckLemmaGuarantees(
                *instance, &adversary, options,
                std::string(variant.name) + " n=" + std::to_string(n) +
                    " u_n=" + std::to_string(u_n) +
                    " policy=" + std::to_string(static_cast<int>(policy)) +
                    " seed=" + std::to_string(seed));
          }
        }
      }
    }
  }
}

TEST(LemmaPropertiesTest, GuaranteesHoldUnderThresholdWorkers) {
  // epsilon = 0 is the T(delta, 0) model of Lemma 3: hard pairs are coin
  // flips, everything else is answered truthfully.
  for (int64_t n : {60, 250}) {
    for (int64_t u_target : {3, 8}) {
      for (uint64_t seed : {10u, 20u, 30u, 40u}) {
        Result<Instance> instance = UniformInstance(n, seed);
        ASSERT_TRUE(instance.ok());
        const double delta = instance->DeltaForU(u_target);
        const int64_t u_n = instance->CountWithin(delta);
        for (const Variant& variant : kVariants) {
          ThresholdComparator naive(&*instance, ThresholdModel{delta, 0.0},
                                    seed * 1000 + static_cast<uint64_t>(n));
          FilterOptions options;
          options.u_n = u_n;
          options.memoize = variant.memoize;
          options.global_loss_counter = variant.global_loss_counter;
          options.threads = variant.threads;
          CheckLemmaGuarantees(
              *instance, &naive, options,
              std::string(variant.name) + " n=" + std::to_string(n) +
                  " u_n=" + std::to_string(u_n) +
                  " seed=" + std::to_string(seed));
        }
      }
    }
  }
}

TEST(LemmaPropertiesTest, GuaranteesHoldOnPackedValueGaps) {
  // Packed instances put every element within the threshold of the maximum
  // (u_n = n stresses the no-gap extreme); clustered gaps via DeltaForU on
  // near-tied uniform draws cover the middle. With u_n = n the filter must
  // keep everything and the loop must terminate immediately.
  for (int64_t n : {16, 48}) {
    Result<Instance> packed = PackedInstance(n, 99);
    ASSERT_TRUE(packed.ok());
    const double delta = 1.0;
    const int64_t u_n = packed->CountWithin(delta);
    ASSERT_EQ(u_n, n);
    for (const Variant& variant : kVariants) {
      AdversarialComparator adversary(&*packed, delta,
                                      AdversarialPolicy::kFirstLoses);
      FilterOptions options;
      options.u_n = u_n;
      options.memoize = variant.memoize;
      options.global_loss_counter = variant.global_loss_counter;
      options.threads = variant.threads;
      CheckLemmaGuarantees(*packed, &adversary, options,
                           std::string("packed ") + variant.name +
                               " n=" + std::to_string(n));
    }
  }
}

TEST(LemmaPropertiesTest, SerialAndParallelBothRespectBudgetStop) {
  // The budget escape hatch preserves "M survives" (stopping early only
  // keeps more elements) on both engines.
  Result<Instance> instance = UniformInstance(200, 77);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(6);
  const int64_t u_n = instance->CountWithin(delta);
  for (int64_t threads : {0, 2}) {
    AdversarialComparator adversary(&*instance, delta,
                                    AdversarialPolicy::kLowerValueWins);
    FilterOptions options;
    options.u_n = u_n;
    options.threads = threads;
    options.max_comparisons = 4 * 200 * u_n / 8;  // Far below the full cost.
    Result<FilterResult> result =
        FilterCandidates(instance->AllElements(), options, &adversary);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->paid_comparisons, options.max_comparisons);
    EXPECT_TRUE(std::find(result->candidates.begin(),
                          result->candidates.end(),
                          instance->MaxElement()) != result->candidates.end())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace crowdmax
