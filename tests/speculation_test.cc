// Speculative round pipelining (DESIGN.md §15): the adaptive Phase-2
// sources issue predicted follow-up rounds while their inputs are still in
// flight. The contract pinned here:
//
//  * Results, traces, logical steps, cache hits and paid comparisons are
//    bit-identical to the synchronous drive at every depth and thread
//    count — on the hit path *and* the misprediction path.
//  * Mispredicted spend is first-class: it lands in the engine's
//    speculation_wasted counter and the executor's cancelled tally, never
//    silently inside paid comparisons, and the MetricsAuditor reconciles
//    executor counters against trace cells plus the cancelled tally.
//  * Checkpoint/resume bit-identity holds at every quiescent boundary of a
//    speculating drive.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/async_executor.h"
#include "core/batched.h"
#include "core/checkpoint.h"
#include "core/comparator.h"
#include "core/maxfind.h"
#include "core/multilevel.h"
#include "core/round_engine.h"
#include "core/topk.h"
#include "core/tournament.h"
#include "core/trace.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  return std::move(instance).value();
}

// Candidates ordered by decreasing true value: the speculated pivot
// (lowest-indexed sample member) is always the sample's true maximum, so
// every prediction hits. Ascending order is the adversarial ordering: the
// prediction is always the sample's *minimum* and every prediction misses.
std::vector<ElementId> OrderByValue(const Instance& instance,
                                    bool descending) {
  std::vector<ElementId> items = instance.AllElements();
  std::sort(items.begin(), items.end(), [&](ElementId a, ElementId b) {
    return descending ? instance.value(a) > instance.value(b)
                      : instance.value(a) < instance.value(b);
  });
  return items;
}

struct SyncReference {
  MaxFindEngineRun run;
  int64_t paid = 0;
  int64_t issued = 0;
  int64_t cache_hits = 0;
  int64_t engine_steps = 0;
  int64_t executor_comparisons = 0;
  int64_t executor_steps = 0;
  std::string trace;
};

SyncReference RunSyncTwoMaxFind(const Instance& instance,
                                const std::vector<ElementId>& items) {
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreateBatched(&executor);
  CROWDMAX_CHECK(engine.ok());
  AlgoTrace trace;
  SyncReference ref;
  {
    ScopedTrace scoped(&trace);
    TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
    Result<MaxFindEngineRun> run = RunTwoMaxFindOnEngine(items, engine->get());
    CROWDMAX_CHECK(run.ok());
    ref.run = *std::move(run);
  }
  ref.paid = (*engine)->paid();
  ref.issued = (*engine)->issued();
  ref.cache_hits = (*engine)->cache_hits();
  ref.engine_steps = (*engine)->logical_steps();
  ref.executor_comparisons = executor.comparisons();
  ref.executor_steps = executor.logical_steps();
  ref.trace = trace.Summary();
  return ref;
}

// The full identity matrix: depths {1, 4, 8} x threads {1, 8}, hit-heavy
// and miss-heavy orderings. Everything the synchronous drive reports must
// come back bit-identical; only the speculation counters may move, and
// the executor's total spend must exceed the synchronous spend by exactly
// the wasted tally.
TEST(SpeculationIdentityTest, TwoMaxFindMatchesSyncAtAllDepthsAndThreads) {
  Instance instance = MakeInstance(140, 101);
  for (const bool descending : {true, false}) {
    const std::vector<ElementId> items = OrderByValue(instance, descending);
    const SyncReference ref = RunSyncTwoMaxFind(instance, items);

    for (const int64_t depth : {int64_t{1}, int64_t{4}, int64_t{8}}) {
      for (const int64_t threads : {int64_t{1}, int64_t{8}}) {
        SCOPED_TRACE("descending=" + std::to_string(descending) +
                     " depth=" + std::to_string(depth) +
                     " threads=" + std::to_string(threads));
        OracleComparator oracle(&instance);
        std::unique_ptr<BatchExecutor> owned;
        BatchExecutor* executor = nullptr;
        if (threads == 1) {
          owned = std::make_unique<ComparatorBatchExecutor>(&oracle);
          executor = owned.get();
        } else {
          Result<std::unique_ptr<ParallelBatchExecutor>> parallel =
              ParallelBatchExecutor::Create(&oracle, threads, /*seed=*/11,
                                            /*chunk_size=*/64);
          ASSERT_TRUE(parallel.ok());
          owned = std::move(*parallel);
          executor = owned.get();
        }
        AsyncBatchAdapter async(executor);
        Result<std::unique_ptr<RoundEngine>> engine =
            RoundEngine::CreatePipelined(&async, depth);
        ASSERT_TRUE(engine.ok());

        AlgoTrace trace;
        Result<MaxFindEngineRun> run = [&]() -> Result<MaxFindEngineRun> {
          ScopedTrace scoped(&trace);
          TraceSpanScope phase_span("expert", TraceWorkerClass::kExpert);
          TwoMaxFindEngineOptions options;
          options.speculate = true;
          return RunTwoMaxFindOnEngine(items, engine->get(), options);
        }();
        ASSERT_TRUE(run.ok()) << run.status().ToString();

        // The algorithm's observable outputs are sync-identical.
        EXPECT_EQ(run->maxfind.best, ref.run.maxfind.best);
        EXPECT_EQ(run->maxfind.rounds, ref.run.maxfind.rounds);
        EXPECT_EQ(run->maxfind.paid_comparisons,
                  ref.run.maxfind.paid_comparisons);
        EXPECT_EQ(run->maxfind.issued_comparisons,
                  ref.run.maxfind.issued_comparisons);
        EXPECT_FALSE(run->partial);

        // Engine accounting: paid carries the wasted spend on top of the
        // sync spend — and nothing else.
        const int64_t wasted = (*engine)->speculation_wasted();
        EXPECT_EQ((*engine)->paid(), ref.paid + wasted);
        EXPECT_EQ((*engine)->issued(), ref.issued);
        EXPECT_EQ((*engine)->cache_hits(), ref.cache_hits);
        EXPECT_EQ((*engine)->logical_steps(), ref.engine_steps);
        EXPECT_EQ(executor->comparisons(), ref.executor_comparisons + wasted);
        EXPECT_EQ(executor->cancelled_comparisons(), wasted);
        EXPECT_EQ(executor->logical_steps(), ref.executor_steps);
        if (threads == 1) {
          EXPECT_EQ(trace.Summary(), ref.trace);
        }

        if (depth >= 2) {
          EXPECT_GT((*engine)->speculative_rounds(), 0);
          if (descending) {
            // Every pivot prediction is the sample's true maximum.
            EXPECT_GT((*engine)->speculation_hits(), 0);
            EXPECT_EQ((*engine)->speculation_mispredicts(), 0);
            EXPECT_EQ(wasted, 0);
            EXPECT_GT((*engine)->overlapped_rounds(), 0);
          } else {
            // Every pivot prediction is the sample's minimum.
            EXPECT_EQ((*engine)->speculation_hits(), 0);
            EXPECT_GT((*engine)->speculation_mispredicts(), 0);
            EXPECT_GT(wasted, 0);
          }
        } else {
          // Depth 1 has no room to speculate.
          EXPECT_EQ((*engine)->speculative_rounds(), 0);
          EXPECT_EQ(wasted, 0);
        }
      }
    }
  }
}

// The paper's worst-case adversary (kFirstLoses answers every hard
// comparison against the first argument) with the ascending-value
// ordering: every pivot prediction misses, and the misprediction
// accounting identity paid == sync_paid + speculation_wasted must hold
// with results still bit-identical.
TEST(SpeculationAccountingTest, AdversaryMaximizesMispredictions) {
  Instance instance = MakeInstance(120, 103);
  const std::vector<ElementId> items =
      OrderByValue(instance, /*descending=*/false);
  const double delta = 0.05;

  AdversarialComparator sync_adversary(&instance, delta,
                                       AdversarialPolicy::kFirstLoses);
  ComparatorBatchExecutor sync_executor(&sync_adversary);
  Result<std::unique_ptr<RoundEngine>> sync_engine =
      RoundEngine::CreateBatched(&sync_executor);
  ASSERT_TRUE(sync_engine.ok());
  Result<MaxFindEngineRun> sync_run =
      RunTwoMaxFindOnEngine(items, sync_engine->get());
  ASSERT_TRUE(sync_run.ok()) << sync_run.status().ToString();
  const int64_t sync_paid = (*sync_engine)->paid();

  AdversarialComparator adversary(&instance, delta,
                                  AdversarialPolicy::kFirstLoses);
  ComparatorBatchExecutor executor(&adversary);
  AsyncBatchAdapter async(&executor);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
  ASSERT_TRUE(engine.ok());
  TwoMaxFindEngineOptions options;
  options.speculate = true;
  Result<MaxFindEngineRun> run =
      RunTwoMaxFindOnEngine(items, engine->get(), options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  EXPECT_EQ(run->maxfind.best, sync_run->maxfind.best);
  EXPECT_EQ(run->maxfind.rounds, sync_run->maxfind.rounds);
  EXPECT_EQ(run->maxfind.paid_comparisons,
            sync_run->maxfind.paid_comparisons);

  EXPECT_GT((*engine)->speculative_rounds(), 0);
  EXPECT_EQ((*engine)->speculation_hits(), 0);
  EXPECT_GT((*engine)->speculation_mispredicts(), 0);
  EXPECT_GT((*engine)->speculation_wasted(), 0);
  EXPECT_EQ((*engine)->paid(), sync_paid + (*engine)->speculation_wasted());
  EXPECT_EQ(executor.comparisons(),
            sync_executor.comparisons() + (*engine)->speculation_wasted());
  EXPECT_EQ(executor.cancelled_comparisons(),
            (*engine)->speculation_wasted());
}

// Trace reconciliation: cancelled speculative work never lands in a trace
// cell, so the executor's comparison counter equals trace-dispatched plus
// the cancelled tally — the ExpectDispatchedWithCancelled contract.
TEST(SpeculationAccountingTest, MetricsAuditorReconcilesCancelledSpend) {
  Instance instance = MakeInstance(120, 107);
  const std::vector<ElementId> items =
      OrderByValue(instance, /*descending=*/false);

  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);

  AlgoTrace trace;
  {
    ScopedTrace scoped(&trace);
    TwoMaxFindEngineOptions options;
    options.speculate = true;
    BatchedPipelineOptions pipeline;
    pipeline.max_in_flight = 8;
    Result<BatchedMaxFindResult> run =
        PipelinedTwoMaxFind(items, &async, pipeline, options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  ASSERT_GT(executor.cancelled_comparisons(), 0)
      << "ordering does not exercise mispredictions";

  // The raw dispatched tally is short by exactly the cancelled count...
  EXPECT_EQ(trace.TotalsFor(TraceWorkerClass::kExpert).dispatched,
            executor.comparisons() - executor.cancelled_comparisons());

  // ...and the auditor closes the gap; every dispatched instance still
  // reconciles with its outcome classes cell by cell.
  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatchedWithCancelled(TraceWorkerClass::kExpert,
                                        executor.comparisons(),
                                        executor.cancelled_comparisons());
  EXPECT_TRUE(auditor.Check().ok()) << auditor.Check().ToString();

  MetricsAuditor naive_auditor(&trace);
  naive_auditor.ExpectDispatched(TraceWorkerClass::kExpert,
                                 executor.comparisons());
  EXPECT_FALSE(naive_auditor.Check().ok())
      << "cancelled spend leaked into trace cells";
}

// Kill-and-resume at every quiescent boundary of a speculating pipelined
// drive: the resumed run must reproduce the uninterrupted run bit for
// bit, speculation counters included.
TEST(SpeculationCheckpointTest, KillResumeBitIdentityAtEveryBoundary) {
  Instance instance = MakeInstance(90, 109);
  // Mixed ordering: both hits and mispredictions occur across the run.
  const std::vector<ElementId> items = instance.AllElements();
  TwoMaxFindEngineOptions options;
  options.speculate = true;

  struct Baseline {
    MaxFindEngineRun run;
    int64_t paid = 0;
    int64_t wasted = 0;
    int64_t hits = 0;
    int64_t mispredicts = 0;
    int64_t comparator_spend = 0;
  } baseline;
  {
    OracleComparator oracle(&instance);
    ComparatorBatchExecutor executor(&oracle);
    AsyncBatchAdapter async(&executor);
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
    ASSERT_TRUE(engine.ok());
    Result<MaxFindEngineRun> run =
        RunTwoMaxFindOnEngine(items, engine->get(), options);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    baseline.run = *std::move(run);
    baseline.paid = (*engine)->paid();
    baseline.wasted = (*engine)->speculation_wasted();
    baseline.hits = (*engine)->speculation_hits();
    baseline.mispredicts = (*engine)->speculation_mispredicts();
    baseline.comparator_spend = oracle.num_comparisons();
  }

  int64_t boundaries_exercised = 0;
  for (int64_t boundary = 1;; ++boundary) {
    SCOPED_TRACE("crash_boundary=" + std::to_string(boundary));
    std::string snapshot;
    {
      OracleComparator oracle(&instance);
      ComparatorBatchExecutor executor(&oracle);
      AsyncBatchAdapter async(&executor);
      Result<std::unique_ptr<RoundEngine>> engine =
          RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
      ASSERT_TRUE(engine.ok());
      CheckpointController controller;
      controller.ArmCrashAtBoundary(boundary);
      (*engine)->set_checkpoint(&controller);
      Result<MaxFindEngineRun> crashed =
          RunTwoMaxFindOnEngine(items, engine->get(), options);
      if (crashed.ok()) break;  // Ran out of boundaries: matrix complete.
      ASSERT_EQ(crashed.status().code(), StatusCode::kAborted);
      ASSERT_TRUE(controller.has_checkpoint());
      snapshot = controller.checkpoint();
    }
    ++boundaries_exercised;

    OracleComparator oracle(&instance);
    ComparatorBatchExecutor executor(&oracle);
    AsyncBatchAdapter async(&executor);
    Result<std::unique_ptr<RoundEngine>> engine =
        RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
    ASSERT_TRUE(engine.ok());
    CheckpointController controller;
    controller.ResumeFrom(snapshot);
    (*engine)->set_checkpoint(&controller);
    Result<MaxFindEngineRun> resumed =
        RunTwoMaxFindOnEngine(items, engine->get(), options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(controller.restores(), 1);

    EXPECT_EQ(resumed->maxfind.best, baseline.run.maxfind.best);
    EXPECT_EQ(resumed->maxfind.rounds, baseline.run.maxfind.rounds);
    EXPECT_EQ(resumed->maxfind.paid_comparisons,
              baseline.run.maxfind.paid_comparisons);
    EXPECT_EQ(resumed->maxfind.issued_comparisons,
              baseline.run.maxfind.issued_comparisons);
    EXPECT_EQ((*engine)->paid(), baseline.paid);
    EXPECT_EQ((*engine)->speculation_wasted(), baseline.wasted);
    EXPECT_EQ((*engine)->speculation_hits(), baseline.hits);
    EXPECT_EQ((*engine)->speculation_mispredicts(), baseline.mispredicts);
    EXPECT_EQ(oracle.num_comparisons(), baseline.comparator_spend);
  }
  EXPECT_GE(boundaries_exercised, 2)
      << "instance too small to exercise mid-run boundaries";
}

// Chunked tournaments: identical tallies in the single-round, chunked
// synchronous and chunked pipelined shapes; the chunked pipelined drive
// actually overlaps rounds.
TEST(ChunkedTournamentTest, ChunkedMatchesSingleRoundAndPipelines) {
  Instance instance = MakeInstance(60, 113);
  const std::vector<ElementId> items = instance.AllElements();
  TournamentEngineOptions chunked;
  chunked.chunk_pairs = 100;

  OracleComparator single_oracle(&instance);
  ComparatorBatchExecutor single_executor(&single_oracle);
  Result<std::unique_ptr<RoundEngine>> single_engine =
      RoundEngine::CreateBatched(&single_executor);
  ASSERT_TRUE(single_engine.ok());
  Result<TournamentEngineRun> single =
      RunTournamentOnEngine(items, single_engine->get());
  ASSERT_TRUE(single.ok());

  OracleComparator sync_oracle(&instance);
  ComparatorBatchExecutor sync_executor(&sync_oracle);
  Result<std::unique_ptr<RoundEngine>> sync_engine =
      RoundEngine::CreateBatched(&sync_executor);
  ASSERT_TRUE(sync_engine.ok());
  Result<TournamentEngineRun> sync = RunTournamentOnEngine(
      items, sync_engine->get(), "all_play_all", chunked);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->tournament.wins, single->tournament.wins);
  EXPECT_EQ(sync->tournament.comparisons, single->tournament.comparisons);
  EXPECT_EQ(sync->unresolved, 0);

  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
  ASSERT_TRUE(engine.ok());
  Result<TournamentEngineRun> piped = RunTournamentOnEngine(
      items, engine->get(), "all_play_all", chunked);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(piped->tournament.wins, single->tournament.wins);
  EXPECT_EQ(piped->tournament.comparisons, single->tournament.comparisons);
  EXPECT_EQ((*engine)->paid(), (*sync_engine)->paid());
  EXPECT_EQ(executor.comparisons(), sync_executor.comparisons());
  EXPECT_EQ(executor.logical_steps(), sync_executor.logical_steps());
  EXPECT_GT((*engine)->overlapped_rounds(), 0);
  EXPECT_EQ((*engine)->speculation_wasted(), 0);
}

// Randomized max-find with one engine round per group: identical results
// in the legacy all-groups-in-one-round shape, the grouped synchronous
// shape and the grouped pipelined shape.
TEST(GroupedRandomizedTest, GroupedMatchesLegacyAndPipelines) {
  Instance instance = MakeInstance(120, 127);
  const std::vector<ElementId> items = instance.AllElements();
  RandomizedMaxFindOptions legacy_options;
  legacy_options.seed = 5;
  legacy_options.group_size_override = 12;
  RandomizedMaxFindOptions grouped_options = legacy_options;
  grouped_options.pipeline_groups = true;

  OracleComparator legacy_oracle(&instance);
  ComparatorBatchExecutor legacy_executor(&legacy_oracle);
  Result<std::unique_ptr<RoundEngine>> legacy_engine =
      RoundEngine::CreateBatched(&legacy_executor);
  ASSERT_TRUE(legacy_engine.ok());
  Result<MaxFindEngineRun> legacy = RunRandomizedMaxFindOnEngine(
      items, legacy_engine->get(), legacy_options);
  ASSERT_TRUE(legacy.ok());

  OracleComparator sync_oracle(&instance);
  ComparatorBatchExecutor sync_executor(&sync_oracle);
  Result<std::unique_ptr<RoundEngine>> sync_engine =
      RoundEngine::CreateBatched(&sync_executor);
  ASSERT_TRUE(sync_engine.ok());
  Result<MaxFindEngineRun> sync = RunRandomizedMaxFindOnEngine(
      items, sync_engine->get(), grouped_options);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ(sync->maxfind.best, legacy->maxfind.best);
  EXPECT_EQ(sync->maxfind.rounds, legacy->maxfind.rounds);
  EXPECT_EQ(sync->maxfind.issued_comparisons,
            legacy->maxfind.issued_comparisons);
  EXPECT_EQ(sync->maxfind.paid_comparisons, legacy->maxfind.paid_comparisons);

  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreatePipelined(&async, /*max_in_flight=*/8);
  ASSERT_TRUE(engine.ok());
  Result<MaxFindEngineRun> piped = RunRandomizedMaxFindOnEngine(
      items, engine->get(), grouped_options);
  ASSERT_TRUE(piped.ok());
  EXPECT_EQ(piped->maxfind.best, legacy->maxfind.best);
  EXPECT_EQ(piped->maxfind.rounds, legacy->maxfind.rounds);
  EXPECT_EQ(piped->maxfind.issued_comparisons,
            legacy->maxfind.issued_comparisons);
  EXPECT_EQ(piped->maxfind.paid_comparisons,
            legacy->maxfind.paid_comparisons);
  EXPECT_EQ((*engine)->paid(), (*sync_engine)->paid());
  EXPECT_GT((*engine)->overlapped_rounds(), 0);
}

// A source that emits the same pair in overlapping rounds: the engine's
// contract-violation error must carry the packed pair key and the source
// round index so the offending emission is identifiable.
class OverlappingPairSource : public RoundSource {
 public:
  Result<bool> NextRound(EngineRound* round) override {
    if (emitted_ >= 2) return false;
    RoundUnit unit;
    unit.pairs.push_back({2, 5});
    round->units.push_back(std::move(unit));
    ++emitted_;
    return true;
  }
  Status ConsumeOutcome(const EngineRound&, const RoundOutcome&) override {
    return Status::OK();
  }
  bool CanPipelineNextRound() const override { return true; }

 private:
  int64_t emitted_ = 0;
};

TEST(SpeculationDiagnosticsTest, OverlapErrorNamesPairKeyAndRoundIndex) {
  Instance instance = MakeInstance(8, 131);
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  AsyncBatchAdapter async(&executor);
  Result<std::unique_ptr<RoundEngine>> engine =
      RoundEngine::CreatePipelined(&async, /*max_in_flight=*/4);
  ASSERT_TRUE(engine.ok());

  OverlappingPairSource source;
  Result<DriveResult> drive = (*engine)->Drive(&source);
  ASSERT_FALSE(drive.ok());
  EXPECT_EQ(drive.status().code(), StatusCode::kInternal);
  const std::string message = drive.status().ToString();
  EXPECT_NE(message.find("RoundPairKey"), std::string::npos) << message;
  EXPECT_NE(message.find("{2, 5}"), std::string::npos) << message;
  EXPECT_NE(message.find("source round index 1"), std::string::npos)
      << message;
}

// The composed entry points: pipelined top-k (chunked expert tournament)
// and the pipelined cascade (speculating 2-MaxFind final) must reproduce
// their batched counterparts exactly.
TEST(PipelinedCompositionTest, TopKMatchesBatched) {
  Instance instance = MakeInstance(150, 137);
  const std::vector<ElementId> items = instance.AllElements();
  TopKOptions options;
  options.k = 3;
  options.filter.u_n = 4;
  options.filter.pipeline_groups = true;
  options.expert_chunk_pairs = 40;

  OracleComparator batched_naive_oracle(&instance);
  OracleComparator batched_expert_oracle(&instance);
  ComparatorBatchExecutor batched_naive(&batched_naive_oracle);
  ComparatorBatchExecutor batched_expert(&batched_expert_oracle);
  Result<BatchedTopKResult> batched =
      BatchedFindTopKWithExperts(items, &batched_naive, &batched_expert,
                                 options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  OracleComparator naive_oracle(&instance);
  OracleComparator expert_oracle(&instance);
  ComparatorBatchExecutor naive_executor(&naive_oracle);
  ComparatorBatchExecutor expert_executor(&expert_oracle);
  AsyncBatchAdapter naive_async(&naive_executor);
  AsyncBatchAdapter expert_async(&expert_executor);
  BatchedPipelineOptions pipeline;
  pipeline.max_in_flight = 8;
  Result<BatchedTopKResult> piped = PipelinedFindTopKWithExperts(
      items, &naive_async, &expert_async, options, pipeline);
  ASSERT_TRUE(piped.ok()) << piped.status().ToString();

  EXPECT_EQ(piped->result.top, batched->result.top);
  EXPECT_EQ(piped->result.candidates, batched->result.candidates);
  EXPECT_EQ(piped->result.paid.naive, batched->result.paid.naive);
  EXPECT_EQ(piped->result.paid.expert, batched->result.paid.expert);
  EXPECT_EQ(piped->result.filter_rounds, batched->result.filter_rounds);
  EXPECT_FALSE(piped->partial);
}

TEST(PipelinedCompositionTest, MultilevelMatchesBatched) {
  Instance instance = MakeInstance(150, 139);
  const std::vector<ElementId> items = instance.AllElements();
  MultilevelOptions options;
  options.filter_template.pipeline_groups = true;
  options.final_phase = Phase2Algorithm::kTwoMaxFind;
  options.final_speculate = true;

  OracleComparator batched_naive_oracle(&instance);
  OracleComparator batched_expert_oracle(&instance);
  ComparatorBatchExecutor batched_naive(&batched_naive_oracle);
  ComparatorBatchExecutor batched_expert(&batched_expert_oracle);
  std::vector<BatchedWorkerClassSpec> batched_classes(2);
  batched_classes[0].executor = &batched_naive;
  batched_classes[0].u = 6;
  batched_classes[0].cost_per_comparison = 1.0;
  batched_classes[1].executor = &batched_expert;
  batched_classes[1].cost_per_comparison = 4.0;
  Result<BatchedMultilevelResult> batched =
      BatchedFindMaxMultilevel(items, batched_classes, options);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();

  OracleComparator naive_oracle(&instance);
  OracleComparator expert_oracle(&instance);
  ComparatorBatchExecutor naive_executor(&naive_oracle);
  ComparatorBatchExecutor expert_executor(&expert_oracle);
  AsyncBatchAdapter naive_async(&naive_executor);
  AsyncBatchAdapter expert_async(&expert_executor);
  std::vector<PipelinedWorkerClassSpec> classes(2);
  classes[0].async = &naive_async;
  classes[0].u = 6;
  classes[0].cost_per_comparison = 1.0;
  classes[1].async = &expert_async;
  classes[1].cost_per_comparison = 4.0;
  BatchedPipelineOptions pipeline;
  pipeline.max_in_flight = 8;
  Result<BatchedMultilevelResult> piped =
      PipelinedFindMaxMultilevel(items, classes, options, pipeline);
  ASSERT_TRUE(piped.ok()) << piped.status().ToString();

  EXPECT_EQ(piped->result.best, batched->result.best);
  EXPECT_EQ(piped->result.paid_per_class, batched->result.paid_per_class);
  EXPECT_EQ(piped->result.candidates_per_level,
            batched->result.candidates_per_level);
  EXPECT_EQ(piped->result.total_cost, batched->result.total_cost);
  EXPECT_FALSE(piped->partial);
}

}  // namespace
}  // namespace crowdmax
