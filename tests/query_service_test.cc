// QueryService: the multi-tenant determinism contract, typed admission
// control, fair-share starvation bound, service-level fault reconciliation
// and cross-query cache sharing (query/service.h).

#include "query/service.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/batched.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "gtest/gtest.h"

namespace crowdmax {
namespace {

Instance MakeInstance(int64_t n, uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

// A mixed workload: kMax (varying u_n and strategy), kTopK and kAbove
// queries across the given shards, no budgets/deadlines unless asked.
std::vector<QuerySpec> MixedWorkload(int64_t count, int64_t shards) {
  std::vector<QuerySpec> specs;
  specs.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    QuerySpec spec;
    spec.tenant = "t" + std::to_string(i);
    spec.shard = i % shards;
    spec.seed = 1000 + static_cast<uint64_t>(i) * 37;
    spec.prices = CostModel{1.0, 40.0};
    switch (i % 4) {
      case 0:
        spec.kind = QueryKind::kMax;
        spec.u_n = 2 + i % 3;
        break;
      case 1:
        spec.kind = QueryKind::kTopK;
        spec.u_n = 2;
        spec.k = 1 + i % 3;
        break;
      case 2:
        spec.kind = QueryKind::kAbove;
        spec.anchor = i % 7;
        spec.above.votes_per_item = 3;
        break;
      default:
        spec.kind = QueryKind::kMax;
        spec.u_n = 2;
        spec.max_comparisons = 150 + 10 * (i % 5);
        break;
    }
    specs.push_back(spec);
  }
  return specs;
}

// The deterministic fields two outcomes must agree on (everything except
// the informational latency / scheduler stats).
void ExpectOutcomesIdentical(const QueryOutcome& a, const QueryOutcome& b,
                             const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.top, b.top);
  EXPECT_EQ(a.above, b.above);
  EXPECT_EQ(a.below, b.below);
  EXPECT_EQ(a.escalated, b.escalated);
  EXPECT_EQ(a.paid.naive, b.paid.naive);
  EXPECT_EQ(a.paid.expert, b.paid.expert);
  EXPECT_EQ(a.issued.naive, b.issued.naive);
  EXPECT_EQ(a.issued.expert, b.issued.expert);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.naive_steps, b.naive_steps);
  EXPECT_EQ(a.expert_steps, b.expert_steps);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.stopped_by_budget, b.stopped_by_budget);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.fault_status.code(), b.fault_status.code());
  EXPECT_EQ(a.platform_dropped_tasks, b.platform_dropped_tasks);
  EXPECT_EQ(a.platform_no_quorum_tasks, b.platform_no_quorum_tasks);
  EXPECT_EQ(a.trace_summary, b.trace_summary);
}

// The contract's centerpiece: >= 64 concurrent queries, multiplexed over
// the shared stack at threads 1 and 8, must produce per-query results,
// counters and traces bit-identical to running each spec alone on the
// serial drive.
TEST(QueryServiceTest, ConcurrentRunMatchesSerialAloneAtBothThreadCounts) {
  const Instance shard_a = MakeInstance(80, 7);
  const Instance shard_b = MakeInstance(60, 11);

  QueryServiceOptions options;
  options.shards = {{&shard_a, shard_a.DeltaForU(4), shard_a.DeltaForU(1)},
                    {&shard_b, shard_b.DeltaForU(3), shard_b.DeltaForU(1)}};
  options.capacity = 3;
  options.collect_traces = true;

  const std::vector<QuerySpec> specs = MixedWorkload(64, 2);

  std::vector<QueryOutcome> alone;
  alone.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    Result<QueryOutcome> outcome = QueryService::ExecuteAlone(options, spec);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->status.ok()) << outcome->status.ToString();
    alone.push_back(std::move(outcome).value());
  }

  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    QueryServiceOptions concurrent = options;
    concurrent.threads = threads;
    Result<QueryService> service = QueryService::Create(concurrent);
    ASSERT_TRUE(service.ok());
    Result<ServiceRunResult> run = service->Run(specs);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->outcomes.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      ExpectOutcomesIdentical(
          alone[i], run->outcomes[i],
          "threads=" + std::to_string(threads) + " spec=" +
              std::to_string(i) + " kind=" +
              QueryKindName(specs[i].kind));
    }
    EXPECT_EQ(run->report.queries, 64);
    EXPECT_EQ(run->report.admitted, 64);
    EXPECT_EQ(run->report.completed, 64);
    EXPECT_TRUE(AuditServiceRun(*run).ok())
        << AuditServiceRun(*run).ToString();
  }
}

// The merged service trace replays per-query traces in spec order, so its
// summary is one deterministic artifact across thread counts.
TEST(QueryServiceTest, MergedTraceSummaryIsThreadCountInvariant) {
  const Instance shard = MakeInstance(50, 3);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(3), shard.DeltaForU(1)}};
  options.collect_traces = true;
  const std::vector<QuerySpec> specs = MixedWorkload(12, 1);

  std::string summary_at_one;
  for (int64_t threads : {int64_t{1}, int64_t{8}}) {
    QueryServiceOptions concurrent = options;
    concurrent.threads = threads;
    Result<QueryService> service = QueryService::Create(concurrent);
    ASSERT_TRUE(service.ok());
    Result<ServiceRunResult> run = service->Run(specs);
    ASSERT_TRUE(run.ok());
    ASSERT_NE(run->merged_trace, nullptr);
    const std::string summary = run->merged_trace->Summary();
    EXPECT_FALSE(summary.empty());
    if (threads == 1) {
      summary_at_one = summary;
    } else {
      EXPECT_EQ(summary, summary_at_one);
    }
  }
}

// Admission control: a query whose predicted cost exceeds its budget is
// rejected kResourceExhausted; one whose structural minimum of batch steps
// exceeds its deadline is rejected kDeadlineExceeded; malformed specs are
// rejected kInvalidArgument. Nothing rejected spends a comparison.
TEST(QueryServiceTest, AdmissionRejectionsAreTyped) {
  const Instance shard = MakeInstance(100, 5);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(4), shard.DeltaForU(1)}};
  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());

  QuerySpec over_budget;
  over_budget.kind = QueryKind::kMax;
  over_budget.u_n = 4;
  over_budget.budget = 0.5;  // Predicted cost is hundreds of comparisons.

  QuerySpec past_deadline;
  past_deadline.kind = QueryKind::kMax;
  past_deadline.u_n = 4;
  past_deadline.deadline_steps = 1;  // Two-phase needs >= 2 batch steps.

  QuerySpec bad_shard;
  bad_shard.shard = 9;

  QuerySpec bad_anchor;
  bad_anchor.kind = QueryKind::kAbove;
  bad_anchor.anchor = 100;

  Result<ServiceRunResult> run =
      service->Run({over_budget, past_deadline, bad_shard, bad_anchor});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->outcomes[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(run->outcomes[1].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(run->outcomes[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(run->outcomes[3].status.code(), StatusCode::kInvalidArgument);
  for (const QueryOutcome& outcome : run->outcomes) {
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.paid.naive, 0);
    EXPECT_EQ(outcome.paid.expert, 0);
  }
  EXPECT_EQ(run->report.admitted, 0);
  EXPECT_EQ(run->report.rejected_budget, 1);
  EXPECT_EQ(run->report.rejected_deadline, 1);
  EXPECT_EQ(run->report.rejected_invalid, 2);
}

// A deadline that passes admission but expires mid-run aborts the query
// with the same typed status at its next batch submission — and the true
// spend up to the abort is still reported. Enforcement depends only on the
// tenant's own grant count, so the abort point is deterministic.
TEST(QueryServiceTest, MidRunDeadlineAbortIsTypedAndDeterministic) {
  const Instance shard = MakeInstance(120, 9);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(4), shard.DeltaForU(1)}};
  options.collect_traces = true;

  QuerySpec spec;
  spec.kind = QueryKind::kMax;
  spec.u_n = 4;
  spec.seed = 77;
  // Passes the structural minimum (2) but far below the filter's O(log n)
  // rounds plus the expert phase.
  spec.deadline_steps = 3;

  Result<QueryOutcome> alone = QueryService::ExecuteAlone(options, spec);
  ASSERT_TRUE(alone.ok());
  EXPECT_TRUE(alone->admitted);
  EXPECT_EQ(alone->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(alone->paid.naive, 0);  // The granted batches were real spend.

  QueryServiceOptions concurrent = options;
  concurrent.threads = 8;
  Result<QueryService> service = QueryService::Create(concurrent);
  ASSERT_TRUE(service.ok());
  std::vector<QuerySpec> specs = MixedWorkload(8, 1);
  specs.push_back(spec);
  Result<ServiceRunResult> run = service->Run(specs);
  ASSERT_TRUE(run.ok());
  ExpectOutcomesIdentical(*alone, run->outcomes.back(),
                          "deadline abort under concurrency");
  EXPECT_EQ(run->report.aborted_deadline, 1);
}

// Fair share: with equal weights and a single batch slot, no ready tenant
// waits more than ~2T grants to others before being served (the file
// comment's sum_o ceil(w_o/w_t) + T bound, T = tenants).
TEST(QueryServiceTest, FairShareStarvationBoundHolds) {
  const Instance shard = MakeInstance(60, 13);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(3), shard.DeltaForU(1)}};
  options.threads = 8;
  options.capacity = 1;  // Maximum contention for the slot.

  const int64_t tenants = 12;
  std::vector<QuerySpec> specs;
  for (int64_t i = 0; i < tenants; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kMax;
    spec.u_n = 3;
    spec.seed = 500 + static_cast<uint64_t>(i);
    specs.push_back(spec);
  }

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> run = service->Run(specs);
  ASSERT_TRUE(run.ok());
  for (int64_t i = 0; i < tenants; ++i) {
    const QueryOutcome& outcome = run->outcomes[static_cast<size_t>(i)];
    EXPECT_TRUE(outcome.status.ok());
    EXPECT_LE(outcome.scheduler.max_grants_behind, 2 * tenants)
        << "tenant " << i << " starved";
  }
  EXPECT_EQ(run->report.max_grants_behind,
            std::max_element(run->outcomes.begin(), run->outcomes.end(),
                             [](const QueryOutcome& a, const QueryOutcome& b) {
                               return a.scheduler.max_grants_behind <
                                      b.scheduler.max_grants_behind;
                             })
                ->scheduler.max_grants_behind);
}

// Service-level fault/stress property: across many tenants on the faulty
// platform, the one merged MetricsAuditor reconciles — per-cell
// dispatched = answered + no_quorum + dropped, per-class dispatch equals
// the summed paid counters, and the combined platform fault tallies match
// the trace outcomes. Plus the replay smoke: the same specs replayed on a
// fresh service reproduce every outcome and the merged summary.
TEST(QueryServiceTest, FaultyPlatformRunReconcilesAndReplays) {
  const Instance shard_a = MakeInstance(40, 21);
  const Instance shard_b = MakeInstance(30, 22);
  QueryServiceOptions options;
  options.shards = {{&shard_a, 0.0, 0.0}, {&shard_b, 0.0, 0.0}};
  options.threads = 4;
  options.capacity = 2;
  options.collect_traces = true;
  options.use_platform = true;
  options.platform_workers = 30;
  options.naive_votes = 3;
  options.expert_votes = 5;
  options.fault.abandon_probability = 0.05;
  options.fault.straggler_probability = 0.03;
  options.fault.churn_probability = 0.01;
  options.fault.min_quorum = 2;
  options.resilient.max_retries = 3;
  options.resilient.min_votes = 1;

  std::vector<QuerySpec> specs;
  for (int64_t i = 0; i < 8; ++i) {
    QuerySpec spec;
    spec.tenant = "faulty" + std::to_string(i);
    spec.shard = i % 2;
    spec.kind = i % 3 == 2 ? QueryKind::kTopK : QueryKind::kMax;
    spec.u_n = 2;
    spec.k = 2;
    spec.seed = 9000 + static_cast<uint64_t>(i) * 101;
    specs.push_back(spec);
  }

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> first = service->Run(specs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  const Status audit = AuditServiceRun(*first);
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  int64_t faults_seen = 0;
  for (const QueryOutcome& outcome : first->outcomes) {
    EXPECT_TRUE(outcome.admitted);
    faults_seen +=
        outcome.platform_dropped_tasks + outcome.platform_no_quorum_tasks;
  }
  EXPECT_GT(faults_seen, 0) << "fault injection produced no faults";
  EXPECT_EQ(first->report.dropped_tasks + first->report.no_quorum_tasks,
            faults_seen);

  // Replay smoke: one seed set, two runs, identical everything.
  Result<ServiceRunResult> second = service->Run(specs);
  ASSERT_TRUE(second.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    ExpectOutcomesIdentical(first->outcomes[i], second->outcomes[i],
                            "replay spec=" + std::to_string(i));
  }
  EXPECT_EQ(first->merged_trace->Summary(), second->merged_trace->Summary());
}

// Cross-query cache sharing: two tenants on the same shard that opt in
// share within-class pair evidence — the second query answers pairs from
// the cache (cache_hits > 0, less paid work) and the audit still
// reconciles, i.e. cache hits were never double-billed as dispatch.
TEST(QueryServiceTest, SameShardSharingTenantsReuseEvidence) {
  const Instance shard = MakeInstance(70, 31);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(3), shard.DeltaForU(1)}};
  options.collect_traces = true;

  QuerySpec first;
  first.kind = QueryKind::kMax;
  first.u_n = 3;
  first.seed = 42;
  first.share_cache = true;
  QuerySpec second = first;  // Same query again: maximal pair overlap.

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> run = service->Run({first, second});
  ASSERT_TRUE(run.ok());
  const QueryOutcome& a = run->outcomes[0];
  const QueryOutcome& b = run->outcomes[1];
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());

  EXPECT_GT(b.cache_hits, 0);
  EXPECT_LT(b.paid.naive + b.paid.expert, a.paid.naive + a.paid.expert);
  EXPECT_EQ(a.best, b.best);  // Shared evidence is consistent per pair.

  const Status audit = AuditServiceRun(*run);
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // The first sharer saw an empty cache, so it must equal the standalone
  // run of the same spec exactly.
  Result<QueryOutcome> alone = QueryService::ExecuteAlone(options, first);
  ASSERT_TRUE(alone.ok());
  ExpectOutcomesIdentical(*alone, a, "first sharer vs alone");
}

// Distinct shards never cross-contaminate: a sharing tenant that is alone
// on its shard behaves exactly as if no cache existed, even when another
// shard's sharing tenants run in the same service call.
TEST(QueryServiceTest, DistinctShardsNeverShareEvidence) {
  const Instance shard_a = MakeInstance(70, 41);
  const Instance shard_b = MakeInstance(70, 43);
  QueryServiceOptions options;
  options.shards = {{&shard_a, shard_a.DeltaForU(3), shard_a.DeltaForU(1)},
                    {&shard_b, shard_b.DeltaForU(3), shard_b.DeltaForU(1)}};
  options.collect_traces = true;
  options.threads = 2;

  QuerySpec on_a;
  on_a.kind = QueryKind::kMax;
  on_a.u_n = 3;
  on_a.seed = 42;
  on_a.shard = 0;
  on_a.share_cache = true;
  QuerySpec on_b = on_a;
  on_b.shard = 1;

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> run = service->Run({on_a, on_b});
  ASSERT_TRUE(run.ok());

  for (size_t i = 0; i < 2; ++i) {
    const QueryOutcome& outcome = run->outcomes[i];
    ASSERT_TRUE(outcome.status.ok());
    // Alone on its shard's cache the query must be bit-identical to the
    // standalone run (which uses no shared cache at all): identical paid
    // counters and cache hits prove the other shard's evidence never
    // reached it. (Hits are nonzero either way — 2-MaxFind memoizes
    // within a query — which is why the comparison, not a zero check, is
    // the isolation proof.)
    Result<QueryOutcome> alone = QueryService::ExecuteAlone(
        options, i == 0 ? on_a : on_b);
    ASSERT_TRUE(alone.ok());
    ExpectOutcomesIdentical(*alone, outcome,
                            "shard " + std::to_string(i) + " isolation");
  }
}

// The pipelined filter path (pipeline_depth > 1) stays inside the
// determinism contract: concurrent results equal ExecuteAlone with the
// same options.
TEST(QueryServiceTest, PipelinedDepthKeepsEquivalence) {
  const Instance shard = MakeInstance(64, 51);
  QueryServiceOptions options;
  options.shards = {{&shard, shard.DeltaForU(3), shard.DeltaForU(1)}};
  options.collect_traces = true;
  options.pipeline_depth = 4;
  options.threads = 4;

  std::vector<QuerySpec> specs;
  for (int64_t i = 0; i < 6; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kMax;
    spec.u_n = 3;
    spec.seed = 600 + static_cast<uint64_t>(i);
    specs.push_back(spec);
  }

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> run = service->Run(specs);
  ASSERT_TRUE(run.ok());
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<QueryOutcome> alone =
        QueryService::ExecuteAlone(options, specs[i]);
    ASSERT_TRUE(alone.ok());
    ExpectOutcomesIdentical(*alone, run->outcomes[i],
                            "pipelined spec=" + std::to_string(i));
  }
}

// The hard combination of the robustness milestone: a mid-run deadline
// abort inside the pipelined drive (depth > 1, rounds still in flight at
// the abort) on a faulty platform. The aborted query must come back with a
// typed kDeadlineExceeded — never a hang, never a silent partial — and
// the merged service accounting must still reconcile against the platform
// transcripts, i.e. the in-flight rounds the abort discarded were still
// billed exactly once.
TEST(QueryServiceTest, PipelinedDeadlineAbortOnFaultyPlatformReconciles) {
  const Instance shard = MakeInstance(48, 61);
  QueryServiceOptions options;
  options.shards = {{&shard, 0.0, 0.0}};
  options.threads = 4;
  options.capacity = 2;
  options.collect_traces = true;
  options.pipeline_depth = 3;
  options.use_platform = true;
  options.platform_workers = 30;
  options.naive_votes = 3;
  options.expert_votes = 5;
  options.fault.abandon_probability = 0.05;
  options.fault.min_quorum = 2;
  options.resilient.max_retries = 2;

  std::vector<QuerySpec> specs;
  for (int64_t i = 0; i < 4; ++i) {
    QuerySpec spec;
    spec.tenant = "dl" + std::to_string(i);
    spec.kind = QueryKind::kMax;
    spec.u_n = 2;
    spec.seed = 7000 + static_cast<uint64_t>(i) * 13;
    // Tenants 1 and 3 get a deadline the two-phase plan cannot meet; the
    // others run to completion around the aborts.
    if (i % 2 == 1) spec.deadline_steps = 2;
    specs.push_back(spec);
  }

  Result<QueryService> service = QueryService::Create(options);
  ASSERT_TRUE(service.ok());
  Result<ServiceRunResult> run = service->Run(specs);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  int64_t aborted = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const QueryOutcome& outcome = run->outcomes[i];
    EXPECT_TRUE(outcome.admitted);
    if (specs[i].deadline_steps > 0) {
      EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
          << "spec " << i << ": " << outcome.status.ToString();
      ++aborted;
    } else {
      EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    }
  }
  ASSERT_EQ(aborted, 2);
  // Mid-run aborts of admitted queries, not admission-time rejections.
  EXPECT_EQ(run->report.aborted_deadline, 2);
  EXPECT_EQ(run->report.rejected_deadline, 0);

  const Status audit = AuditServiceRun(*run);
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // Determinism survives the abort: aborted queries replay bit-identically
  // alone, in-flight discards included.
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<QueryOutcome> alone = QueryService::ExecuteAlone(options, specs[i]);
    ASSERT_TRUE(alone.ok());
    ExpectOutcomesIdentical(*alone, run->outcomes[i],
                            "deadline spec=" + std::to_string(i));
  }
}

}  // namespace
}  // namespace crowdmax
