// Tests for the two-phase approximate top-k extension.

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/comparator.h"
#include "core/instance.h"
#include "core/topk.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

TEST(TopKTest, Validation) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator naive(&instance);
  OracleComparator expert(&instance);

  TopKOptions options;
  options.k = 0;
  EXPECT_FALSE(
      FindTopKWithExperts(instance.AllElements(), &naive, &expert, options)
          .ok());
  options.k = 4;
  EXPECT_FALSE(
      FindTopKWithExperts(instance.AllElements(), &naive, &expert, options)
          .ok());
  options.k = 1;
  options.filter.u_n = 0;
  EXPECT_FALSE(
      FindTopKWithExperts(instance.AllElements(), &naive, &expert, options)
          .ok());
  options.filter.u_n = 1;
  EXPECT_FALSE(FindTopKWithExperts({}, &naive, &expert, options).ok());
}

TEST(TopKTest, ExactWithOracles) {
  Result<Instance> instance = UniformInstance(300, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator naive(&*instance);
  OracleComparator expert(&*instance);

  TopKOptions options;
  options.k = 5;
  options.filter.u_n = 3;
  Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                  &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->top.size(), 5u);
  for (size_t j = 0; j < result->top.size(); ++j) {
    EXPECT_EQ(instance->Rank(result->top[j]), static_cast<int64_t>(j) + 1);
  }
}

TEST(TopKTest, KEqualsOneMatchesMaxFinding) {
  Result<Instance> instance = UniformInstance(400, /*seed=*/2);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(10);
  const double delta_e = instance->DeltaForU(2);
  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0}, 3);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0}, 4);

  TopKOptions options;
  options.k = 1;
  options.filter.u_n = instance->CountWithin(delta_n);
  Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                  &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->top.size(), 1u);
  EXPECT_LE(instance->Distance(result->top[0], instance->MaxElement()),
            2.0 * delta_e + 1e-12);
}

// Main guarantee sweep: every true top-k element survives phase 1, and the
// value at each returned position is within 2*delta_e of the true value at
// that rank.
class TopKGuaranteeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, uint64_t>> {
};

TEST_P(TopKGuaranteeSweep, TopKSurvivesAndPositionsAreClose) {
  const auto [n, k, seed] = GetParam();
  Result<Instance> instance = UniformInstance(n, seed);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(8);
  const double delta_e = instance->DeltaForU(2);

  // True top-k by value, and U = the largest naive blind spot over them
  // (interior elements have two-sided neighbourhoods, so U can exceed the
  // max-centred u_n).
  std::vector<ElementId> by_rank = instance->AllElements();
  std::sort(by_rank.begin(), by_rank.end(), [&](ElementId a, ElementId b) {
    return instance->value(a) > instance->value(b);
  });
  int64_t blind_spot = 1;
  for (int64_t j = 0; j < k; ++j) {
    blind_spot = std::max(
        blind_spot,
        instance->CountWithinOf(by_rank[static_cast<size_t>(j)], delta_n));
  }

  ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                            seed + 1);
  ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                             seed + 2);

  TopKOptions options;
  options.k = k;
  options.filter.u_n = blind_spot;
  Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                  &naive, &expert, options);
  ASSERT_TRUE(result.ok());

  // (1) Every true top-k element survived phase 1.
  std::set<ElementId> candidate_set(result->candidates.begin(),
                                    result->candidates.end());
  for (int64_t j = 0; j < k; ++j) {
    EXPECT_TRUE(candidate_set.count(by_rank[static_cast<size_t>(j)]) > 0)
        << "true rank " << j + 1 << " was filtered out";
  }

  // (2) Returned elements are distinct.
  std::set<ElementId> returned(result->top.begin(), result->top.end());
  EXPECT_EQ(returned.size(), static_cast<size_t>(k));

  // (3) Value at each returned position within 2*delta_e of the true
  // value at that rank.
  for (int64_t j = 0; j < k; ++j) {
    const double true_value =
        instance->value(by_rank[static_cast<size_t>(j)]);
    const double got_value =
        instance->value(result->top[static_cast<size_t>(j)]);
    EXPECT_GE(got_value, true_value - 2.0 * delta_e - 1e-12)
        << "position " << j;
  }

  // (4) Comparison budget: 4*n*(U + k - 1) naive.
  EXPECT_LE(result->paid.naive, 4 * n * (blind_spot + k - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopKGuaranteeSweep,
    ::testing::Combine(::testing::Values<int64_t>(200, 800),
                       ::testing::Values<int64_t>(2, 5, 10),
                       ::testing::Values<uint64_t>(11, 12, 13)));

TEST(TopKTest, WorksUnderAdversarialTies) {
  Result<Instance> instance = UniformInstance(300, /*seed=*/21);
  ASSERT_TRUE(instance.ok());
  const double delta_n = instance->DeltaForU(6);
  AdversarialComparator naive(&*instance, delta_n,
                              AdversarialPolicy::kLowerValueWins);
  OracleComparator expert(&*instance);

  std::vector<ElementId> by_rank = instance->AllElements();
  std::sort(by_rank.begin(), by_rank.end(), [&](ElementId a, ElementId b) {
    return instance->value(a) > instance->value(b);
  });
  int64_t blind_spot = 1;
  for (int j = 0; j < 4; ++j) {
    blind_spot = std::max(
        blind_spot, instance->CountWithinOf(by_rank[static_cast<size_t>(j)],
                                            delta_n));
  }

  TopKOptions options;
  options.k = 4;
  options.filter.u_n = blind_spot;
  Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                  &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  // With an exact expert, the returned set is the true top-4 in order.
  for (size_t j = 0; j < result->top.size(); ++j) {
    EXPECT_EQ(instance->Rank(result->top[j]), static_cast<int64_t>(j) + 1);
  }
}

TEST(TopKTest, KEqualsNReturnsEverything) {
  Result<Instance> instance = UniformInstance(30, /*seed=*/31);
  ASSERT_TRUE(instance.ok());
  OracleComparator naive(&*instance);
  OracleComparator expert(&*instance);
  TopKOptions options;
  options.k = 30;
  options.filter.u_n = 1;
  Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                  &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top.size(), 30u);
  // Perfectly sorted by the oracle expert.
  for (size_t j = 0; j < result->top.size(); ++j) {
    EXPECT_EQ(instance->Rank(result->top[j]), static_cast<int64_t>(j) + 1);
  }
}

}  // namespace
}  // namespace crowdmax
