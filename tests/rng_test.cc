// Tests for the bulk draw layer of common/rng.h (DESIGN.md §16).
//
// The contract under test: every Fill* call produces the exact same draw
// stream as the corresponding per-call API — values bit-identical, RNG
// state position identical at every boundary — on both the scalar and the
// SIMD backend; and the 53-bit integer threshold mapping is equivalent to
// the float compare it replaces for every representable probability.

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace crowdmax {
namespace {

// Lengths that cross the internal block boundary (1024) and every unroll
// remainder.
const std::vector<size_t> kLengths = {0,    1,    3,    4,    5,   31,
                                      1000, 1023, 1024, 1025, 4096, 5000};

// The probability edge set of the issue contract: closed edges that skip
// the draw, the subnormal floor, and the nextafter neighbours of both
// edges.
std::vector<double> EdgeProbs() {
  return {0.0,
          1.0,
          -0.25,
          2.0,
          std::numeric_limits<double>::denorm_min(),
          std::nextafter(0.0, 1.0),
          std::nextafter(1.0, 0.0),
          std::nextafter(0.5, 0.0),
          0.5,
          std::nextafter(0.5, 1.0),
          0x1.0p-53,
          1.0 - 0x1.0p-53,
          0.15,
          0.37};
}

TEST(RngBulkTest, FillRawMatchesNextAtEveryLength) {
  for (size_t n : kLengths) {
    Rng bulk(/*seed=*/42);
    Rng percall(/*seed=*/42);
    std::vector<uint64_t> got(n);
    bulk.FillRaw(got);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], percall.Next()) << "n=" << n << " i=" << i;
    }
    // Mid-stream state byte-identity: bulk and per-call agree not just on
    // outputs but on the exact generator position (SaveState contract).
    ASSERT_EQ(bulk.state(), percall.state()) << "n=" << n;
  }
}

TEST(RngBulkTest, FillRawResumesMidBlock) {
  // Two bulk calls that split a block must equal one bulk call and the
  // per-call stream: the kernel may not pre-draw past what it returns.
  Rng split(/*seed=*/7);
  Rng whole(/*seed=*/7);
  std::vector<uint64_t> a(700), b(700), all(1400);
  split.FillRaw(a);
  split.FillRaw(b);
  whole.FillRaw(all);
  for (size_t i = 0; i < 700; ++i) {
    ASSERT_EQ(a[i], all[i]);
    ASSERT_EQ(b[i], all[700 + i]);
  }
  ASSERT_EQ(split.state(), whole.state());
}

TEST(RngBulkTest, FillDoublesMatchesNextDouble) {
  for (size_t n : kLengths) {
    Rng bulk(/*seed=*/99);
    Rng percall(/*seed=*/99);
    std::vector<double> got(n);
    bulk.FillDoubles(got);
    for (size_t i = 0; i < n; ++i) {
      const double want = percall.NextDouble();
      ASSERT_EQ(got[i], want) << "n=" << n << " i=" << i;
    }
    ASSERT_EQ(bulk.state(), percall.state());
  }
}

TEST(RngBulkTest, FillBernoulliMatchesNextBernoulliIncludingEdges) {
  // A long prob vector cycling through the edge set and open values:
  // closed rows must skip draws exactly like per-call NextBernoulli, so
  // the state comparison catches any draw-count drift.
  const std::vector<double> edges = EdgeProbs();
  std::vector<double> probs;
  probs.reserve(3000);
  for (size_t i = 0; i < 3000; ++i) {
    probs.push_back(edges[i % edges.size()]);
  }
  Rng bulk(/*seed=*/1234);
  Rng percall(/*seed=*/1234);
  std::vector<uint8_t> got(probs.size());
  bulk.FillBernoulli(probs, got);
  for (size_t i = 0; i < probs.size(); ++i) {
    const bool want = percall.NextBernoulli(probs[i]);
    ASSERT_EQ(got[i] != 0, want) << "i=" << i << " p=" << probs[i];
  }
  ASSERT_EQ(bulk.state(), percall.state());
}

TEST(RngBulkTest, FillBernoulliNaNDrawsAndFails) {
  // NextBernoulli(NaN) falls through both edge tests and fails the float
  // compare — it consumes a draw and returns false. The bulk path must
  // reproduce both the outcome and the consumed draw.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> probs = {0.5, nan, 0.5, nan, nan, 0.9};
  Rng bulk(/*seed=*/5);
  Rng percall(/*seed=*/5);
  std::vector<uint8_t> got(probs.size());
  bulk.FillBernoulli(probs, got);
  for (size_t i = 0; i < probs.size(); ++i) {
    ASSERT_EQ(got[i] != 0, percall.NextBernoulli(probs[i])) << "i=" << i;
  }
  ASSERT_EQ(bulk.state(), percall.state());
}

TEST(RngBulkTest, FillBernoulliThresholdsConsumesOneDrawPerRow) {
  const std::vector<double> edges = EdgeProbs();
  std::vector<uint64_t> thresholds;
  for (double p : edges) {
    if (p > 0.0 && p < 1.0) thresholds.push_back(Rng::BernoulliThreshold(p));
  }
  // Repeat to cross a block boundary.
  const size_t base = thresholds.size();
  for (size_t i = 0; thresholds.size() < 2500; ++i) {
    thresholds.push_back(thresholds[i % base]);
  }
  Rng bulk(/*seed=*/31);
  Rng percall(/*seed=*/31);
  std::vector<uint8_t> got(thresholds.size());
  bulk.FillBernoulliThresholds(thresholds, got);
  for (size_t i = 0; i < thresholds.size(); ++i) {
    const bool want = (percall.Next() >> 11) < thresholds[i];
    ASSERT_EQ(got[i] != 0, want) << "i=" << i;
  }
  ASSERT_EQ(bulk.state(), percall.state());
}

// ---- Integer threshold <=> float compare equivalence ---------------------

// For every probability p in (0, 1): u * 2^-53 < p  <=>  u < T(p), with
// T = Rng::BernoulliThreshold(p). Both sides are monotone in u, so it is
// enough to check u around the crossover point and at the domain ends.
void CheckThresholdEquivalence(double p) {
  ASSERT_TRUE(p > 0.0 && p < 1.0);
  const uint64_t threshold = Rng::BernoulliThreshold(p);
  ASSERT_GE(threshold, uint64_t{1});
  ASSERT_LE(threshold, (uint64_t{1} << 53) - 1);
  std::vector<uint64_t> probes = {0, (uint64_t{1} << 53) - 1, threshold};
  if (threshold > 0) probes.push_back(threshold - 1);
  if (threshold + 1 < (uint64_t{1} << 53)) probes.push_back(threshold + 1);
  for (uint64_t u : probes) {
    const bool via_float = static_cast<double>(u) * 0x1.0p-53 < p;
    const bool via_int = u < threshold;
    ASSERT_EQ(via_float, via_int)
        << "p=" << p << " u=" << u << " T=" << threshold;
  }
}

TEST(BernoulliThresholdTest, ExhaustiveGridEquivalence) {
  // Dense dyadic grid (every p = k * 2^-16), the representable
  // neighbourhood of both edges and of the grid points, and a seeded
  // random sample of arbitrary doubles in (0, 1).
  for (uint64_t k = 1; k < (uint64_t{1} << 16); ++k) {
    CheckThresholdEquivalence(static_cast<double>(k) * 0x1.0p-16);
  }
  CheckThresholdEquivalence(std::numeric_limits<double>::denorm_min());
  CheckThresholdEquivalence(std::nextafter(0.0, 1.0));
  CheckThresholdEquivalence(std::nextafter(1.0, 0.0));
  CheckThresholdEquivalence(0x1.0p-53);
  CheckThresholdEquivalence(std::nextafter(0x1.0p-53, 0.0));
  CheckThresholdEquivalence(std::nextafter(0x1.0p-53, 1.0));
  Rng rng(/*seed=*/77);
  for (int i = 0; i < 20000; ++i) {
    const double p = rng.NextDouble();
    if (p > 0.0) CheckThresholdEquivalence(p);
  }
}

TEST(BernoulliThresholdTest, KnownFixedPoints) {
  EXPECT_EQ(Rng::BernoulliThreshold(0.5), uint64_t{1} << 52);
  EXPECT_EQ(Rng::BernoulliThreshold(std::nextafter(1.0, 0.0)),
            (uint64_t{1} << 53) - 1);
  EXPECT_EQ(Rng::BernoulliThreshold(std::numeric_limits<double>::denorm_min()),
            uint64_t{1});
  EXPECT_EQ(Rng::BernoulliThreshold(0x1.0p-53), uint64_t{1});
}

// ---- Backend equivalence -------------------------------------------------

TEST(RngBulkBackendTest, ScalarAndSimdAreBitIdentical) {
  // When the SIMD backend is unavailable (scalar build, old CPU, or the
  // CROWDMAX_NO_SIMD override) this degenerates to scalar == scalar,
  // which is exactly what the scalar-forced CI invocation pins.
  const bool simd_available = SetRngBulkSimd(true);
  const std::string active = RngBulkBackend();
  EXPECT_EQ(active, simd_available ? "avx2" : "scalar");

  std::vector<double> probs;
  Rng seed_rng(/*seed=*/2026);
  for (int i = 0; i < 5000; ++i) probs.push_back(seed_rng.NextDouble());
  probs[100] = 0.0;
  probs[200] = 1.0;

  Rng a(/*seed=*/11);
  std::vector<uint64_t> raw_a(3000);
  std::vector<double> dbl_a(3000);
  std::vector<uint8_t> bits_a(probs.size());
  a.FillRaw(raw_a);
  a.FillDoubles(dbl_a);
  a.FillBernoulli(probs, bits_a);

  SetRngBulkSimd(false);
  EXPECT_STREQ(RngBulkBackend(), "scalar");
  Rng b(/*seed=*/11);
  std::vector<uint64_t> raw_b(3000);
  std::vector<double> dbl_b(3000);
  std::vector<uint8_t> bits_b(probs.size());
  b.FillRaw(raw_b);
  b.FillDoubles(dbl_b);
  b.FillBernoulli(probs, bits_b);

  SetRngBulkSimd(true);  // Restore for the rest of the process.

  EXPECT_EQ(raw_a, raw_b);
  EXPECT_EQ(dbl_a, dbl_b);
  EXPECT_EQ(bits_a, bits_b);
  EXPECT_EQ(a.state(), b.state());
}

// ---- Statistical sanity --------------------------------------------------

TEST(RngBulkStatTest, BernoulliChiSquareAtP37) {
  // 1e5 bulk draws at p = 0.37: one-dof chi-square against the expected
  // split must stay below 10.83 (the 0.999 quantile).
  const size_t n = 100000;
  const double p = 0.37;
  std::vector<double> probs(n, p);
  std::vector<uint8_t> bits(n);
  Rng rng(/*seed=*/424242);
  rng.FillBernoulli(probs, bits);
  double successes = 0;
  for (uint8_t bit : bits) successes += bit;
  const double expected = p * static_cast<double>(n);
  const double expected_fail = static_cast<double>(n) - expected;
  const double failures = static_cast<double>(n) - successes;
  const double chi2 =
      (successes - expected) * (successes - expected) / expected +
      (failures - expected_fail) * (failures - expected_fail) / expected_fail;
  EXPECT_LT(chi2, 10.83) << "successes=" << successes;
}

TEST(RngBulkStatTest, DoublesUniformChiSquareSixteenBins) {
  // 1e5 bulk doubles over 16 equal bins: 15-dof chi-square must stay
  // below 37.70 (the 0.999 quantile).
  const size_t n = 100000;
  std::vector<double> draws(n);
  Rng rng(/*seed=*/31337);
  rng.FillDoubles(draws);
  std::vector<int64_t> bins(16, 0);
  for (double d : draws) {
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    ++bins[static_cast<size_t>(d * 16.0)];
  }
  const double expected = static_cast<double>(n) / 16.0;
  double chi2 = 0.0;
  for (int64_t count : bins) {
    const double diff = static_cast<double>(count) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.70);
}

}  // namespace
}  // namespace crowdmax
