// Tests for the work-stealing thread pool behind the parallel tournament
// engine: every ParallelFor index runs exactly once, pools are reusable,
// threads == 1 degrades to inline execution, and concurrent batches with
// per-index output slots produce deterministic results.

#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace crowdmax {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  for (int64_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kCount = 1000;
    std::vector<std::atomic<int64_t>> hits(kCount);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(kCount, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (int64_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " at threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, ZeroAndSingleCountBatches) {
  ThreadPool pool(4);
  std::atomic<int64_t> calls{0};
  pool.ParallelFor(0, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  // threads == 1 spawns no workers; the body must observe the submitting
  // thread's id for every index.
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> foreign{false};
  pool.ParallelFor(64, [&](int64_t) {
    if (std::this_thread::get_id() != caller) foreign.store(true);
  });
  EXPECT_FALSE(foreign.load());
}

TEST(ThreadPoolTest, ThreadCountClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  int64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
    total += sum.load();
  }
  EXPECT_EQ(total, 20 * (100 * 99 / 2));
}

TEST(ThreadPoolTest, DisjointSlotWritesAreDeterministic) {
  // The engine's discipline: each index writes only its own slot, so the
  // result vector is a pure function of the body regardless of schedule.
  constexpr int64_t kCount = 4096;
  std::vector<int64_t> expected(kCount);
  for (int64_t i = 0; i < kCount; ++i) expected[static_cast<size_t>(i)] = i * i;
  for (int64_t threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<int64_t> out(kCount, -1);
    pool.ParallelFor(kCount, [&](int64_t i) {
      out[static_cast<size_t>(i)] = i * i;
    });
    EXPECT_EQ(out, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, StressManySmallBatches) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](int64_t) { sum.fetch_add(1); });
  }
  EXPECT_EQ(sum.load(), 200 * 17);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace crowdmax
