// Tests for the common infrastructure: Status/Result, Rng, TablePrinter,
// FlagParser.

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"

namespace crowdmax {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad n");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad n");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kInternal}) {
    names.insert(std::string(StatusCodeName(code)));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST(StatusTest, CopyPreservesState) {
  Status status = Status::NotFound("missing");
  Status copy = status;
  EXPECT_EQ(copy.code(), StatusCode::kNotFound);
  EXPECT_EQ(copy.message(), "missing");
}

// ---------------------------------------------------------------- Result.

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("n too large"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, MutableAccess) {
  Result<int> r(1);
  r.value() = 7;
  EXPECT_EQ(*r, 7);
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<size_t>(rng.NextBounded(kBuckets))];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 0.05 * expected);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(2.0, 5.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(29);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesDistinctSeeds) {
  Rng rng(37);
  std::set<uint64_t> seeds;
  for (int i = 0; i < 100; ++i) seeds.insert(rng.Fork());
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(RngTest, SplitMix64Advances) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(&state);
  const uint64_t b = SplitMix64(&state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

// --------------------------------------------------------------- Tables.

TEST(TableTest, AlignedOutputContainsHeadersAndCells) {
  TablePrinter table({"n", "cost"});
  table.AddRow({"1000", "12.5"});
  table.AddRow({"2000", "30.0"});
  std::ostringstream out;
  table.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("cost"), std::string::npos);
  EXPECT_NE(s.find("1000"), std::string::npos);
  EXPECT_NE(s.find("30.0"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  TablePrinter table({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  std::ostringstream out;
  table.PrintCsv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, ShortRowsRenderEmptyCells) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatInt(-42), "-42");
  EXPECT_EQ(FormatInt(0), "0");
}

// ---------------------------------------------------------------- Flags.

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  std::vector<std::string> storage = {"prog", "--n=100", "--trials", "7"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetInt("n", 0), 100);
  EXPECT_EQ(parser.GetInt("trials", 0), 7);
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  std::vector<std::string> storage = {"prog"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.GetInt("n", 55), 55);
  EXPECT_DOUBLE_EQ(parser.GetDouble("x", 1.5), 1.5);
  EXPECT_TRUE(parser.GetBool("flag", true));
  EXPECT_EQ(parser.GetString("s", "dflt"), "dflt");
  EXPECT_FALSE(parser.Has("n"));
}

TEST(FlagsTest, BareBooleanFlag) {
  std::vector<std::string> storage = {"prog", "--verbose", "--csv=false"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(parser.GetBool("verbose", false));
  EXPECT_FALSE(parser.GetBool("csv", true));
}

TEST(FlagsTest, RejectsPositionalArguments) {
  std::vector<std::string> storage = {"prog", "oops"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, RejectsDuplicateFlags) {
  std::vector<std::string> storage = {"prog", "--n=1", "--n=2"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, ParsesDoubles) {
  std::vector<std::string> storage = {"prog", "--ratio=2.5"};
  auto argv = MakeArgv(storage);
  FlagParser parser;
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio", 0.0), 2.5);
}

}  // namespace
}  // namespace crowdmax
