// Tests for Algorithm 1 (FindMaxWithExperts): end-to-end guarantees under
// the two-class threshold model, comparison budgets, and cost accounting.

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/expert_max.h"
#include "core/instance.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

struct TwoClassSetup {
  Instance instance;
  double delta_n;
  double delta_e;
  int64_t u_n;
  int64_t u_e;
};

TwoClassSetup MakeSetup(int64_t n, int64_t u_n_target, int64_t u_e_target,
                        uint64_t seed) {
  Result<Instance> instance = UniformInstance(n, seed);
  CROWDMAX_CHECK(instance.ok());
  TwoClassSetup setup{std::move(instance).value(), 0.0, 0.0, 0, 0};
  setup.delta_n = setup.instance.DeltaForU(u_n_target);
  setup.delta_e = setup.instance.DeltaForU(u_e_target);
  setup.u_n = setup.instance.CountWithin(setup.delta_n);
  setup.u_e = setup.instance.CountWithin(setup.delta_e);
  return setup;
}

TEST(ExpertMaxTest, RejectsEmptyInput) {
  Instance instance({1.0});
  OracleComparator naive(&instance);
  OracleComparator expert(&instance);
  ExpertMaxOptions options;
  EXPECT_FALSE(FindMaxWithExperts({}, &naive, &expert, options).ok());
}

TEST(ExpertMaxTest, ExactWithOracles) {
  Result<Instance> instance = UniformInstance(400, /*seed=*/1);
  ASSERT_TRUE(instance.ok());
  OracleComparator naive(&*instance);
  OracleComparator expert(&*instance);
  ExpertMaxOptions options;
  options.filter.u_n = 5;
  Result<ExpertMaxResult> result =
      FindMaxWithExperts(instance->AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->best, instance->MaxElement());
}

// Main guarantee sweep: output within 2*delta_e, candidate set contains M,
// comparison budgets respected.
class ExpertMaxGuaranteeSweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t, uint64_t>> {};

TEST_P(ExpertMaxGuaranteeSweep, TheoremOneHolds) {
  const auto [n, u_n_target, u_e_target, seed] = GetParam();
  TwoClassSetup setup = MakeSetup(n, u_n_target, u_e_target, seed);

  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, seed + 1);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, seed + 2);

  ExpertMaxOptions options;
  options.filter.u_n = setup.u_n;
  Result<ExpertMaxResult> result = FindMaxWithExperts(
      setup.instance.AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());

  const ElementId max_elem = setup.instance.MaxElement();
  // Candidates contain M (Lemma 3) and are few.
  EXPECT_NE(std::find(result->candidates.begin(), result->candidates.end(),
                      max_elem),
            result->candidates.end());
  EXPECT_LE(static_cast<int64_t>(result->candidates.size()),
            2 * setup.u_n - 1);
  // Output within 2*delta_e (Theorem 1).
  EXPECT_LE(setup.instance.Distance(result->best, max_elem),
            2.0 * setup.delta_e + 1e-12);
  // Comparison budgets: 4*n*u_n naive, 2*(2*u_n)^{3/2} expert.
  EXPECT_LE(result->paid.naive, 4 * n * setup.u_n);
  EXPECT_LE(result->paid.expert,
            TwoMaxFindComparisonUpperBound(2 * setup.u_n - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExpertMaxGuaranteeSweep,
    ::testing::Combine(::testing::Values<int64_t>(100, 500, 1500),
                       ::testing::Values<int64_t>(5, 15),
                       ::testing::Values<int64_t>(2, 5),
                       ::testing::Values<uint64_t>(3, 4)));

TEST(ExpertMaxTest, RandomizedPhase2MeetsThreeDeltaGuarantee) {
  int within = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    TwoClassSetup setup =
        MakeSetup(300, 12, 4, /*seed=*/900 + static_cast<uint64_t>(t));
    ThresholdComparator naive(&setup.instance,
                              ThresholdModel{setup.delta_n, 0.0},
                              /*seed=*/1000 + static_cast<uint64_t>(t));
    ThresholdComparator expert(&setup.instance,
                               ThresholdModel{setup.delta_e, 0.0},
                               /*seed=*/1100 + static_cast<uint64_t>(t));
    ExpertMaxOptions options;
    options.filter.u_n = setup.u_n;
    options.phase2 = Phase2Algorithm::kRandomized;
    options.randomized.seed = 1200 + static_cast<uint64_t>(t);
    Result<ExpertMaxResult> result = FindMaxWithExperts(
        setup.instance.AllElements(), &naive, &expert, options);
    ASSERT_TRUE(result.ok());
    if (setup.instance.Distance(result->best, setup.instance.MaxElement()) <=
        3.0 * setup.delta_e + 1e-12) {
      ++within;
    }
  }
  EXPECT_GE(within, kTrials - 2);
}

TEST(ExpertMaxTest, AllPlayAllPhase2Works) {
  TwoClassSetup setup = MakeSetup(200, 8, 3, /*seed=*/21);
  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, /*seed=*/22);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, /*seed=*/23);
  ExpertMaxOptions options;
  options.filter.u_n = setup.u_n;
  options.phase2 = Phase2Algorithm::kAllPlayAll;
  Result<ExpertMaxResult> result = FindMaxWithExperts(
      setup.instance.AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(setup.instance.Distance(result->best, setup.instance.MaxElement()),
            2.0 * setup.delta_e + 1e-12);
  // All-play-all pays a full tournament over the candidates.
  const int64_t s = static_cast<int64_t>(result->candidates.size());
  EXPECT_EQ(result->paid.expert, s * (s - 1) / 2);
}

TEST(ExpertMaxTest, ExpertComparisonsIndependentOfN) {
  // Figure 4's headline: expert comparisons depend on u_n, not on n.
  std::vector<int64_t> expert_counts;
  for (int64_t n : {500, 1000, 2000, 4000}) {
    TwoClassSetup setup =
        MakeSetup(n, 10, 5, /*seed=*/static_cast<uint64_t>(n) + 31);
    ThresholdComparator naive(&setup.instance,
                              ThresholdModel{setup.delta_n, 0.0},
                              /*seed=*/32);
    ThresholdComparator expert(&setup.instance,
                               ThresholdModel{setup.delta_e, 0.0},
                               /*seed=*/33);
    ExpertMaxOptions options;
    options.filter.u_n = setup.u_n;
    Result<ExpertMaxResult> result = FindMaxWithExperts(
        setup.instance.AllElements(), &naive, &expert, options);
    ASSERT_TRUE(result.ok());
    expert_counts.push_back(result->paid.expert);
  }
  // Every run's expert cost is bounded by the same u_n-derived budget.
  for (int64_t count : expert_counts) {
    EXPECT_LE(count, TwoMaxFindComparisonUpperBound(2 * 10 - 1) + 10);
  }
}

TEST(ExpertMaxTest, CostUnderModel) {
  ExpertMaxResult result;
  result.paid.naive = 1000;
  result.paid.expert = 50;
  CostModel model;
  model.naive_cost = 1.0;
  model.expert_cost = 20.0;
  EXPECT_DOUBLE_EQ(result.CostUnder(model), 1000.0 + 50.0 * 20.0);
}

TEST(CostModelTest, RatioIsWellDefinedOnDegenerateModels) {
  // Normal premium.
  EXPECT_DOUBLE_EQ((CostModel{1.0, 20.0}).Ratio(), 20.0);
  // All-free model: Valid() admits it, and the 0/0 must not surface as
  // NaN into budget arithmetic — no expert premium means ratio 1.
  EXPECT_DOUBLE_EQ((CostModel{0.0, 0.0}).Ratio(), 1.0);
  // Free naive work but priced experts: an unbounded premium.
  EXPECT_TRUE(std::isinf((CostModel{0.0, 5.0}).Ratio()));
  EXPECT_GT((CostModel{0.0, 5.0}).Ratio(), 0.0);
}

TEST(BudgetedMaxTest, AmpleBudgetBehavesLikeUnconstrainedRun) {
  TwoClassSetup setup = MakeSetup(600, 10, 3, /*seed=*/61);
  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, 62);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, 63);
  BudgetedMaxOptions options;
  options.base.filter.u_n = setup.u_n;
  options.prices = CostModel{1.0, 20.0};
  options.budget = 1e9;
  Result<BudgetedMaxResult> result = BudgetedFindMaxWithExperts(
      setup.instance.AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->filter_stopped_by_budget);
  EXPECT_TRUE(result->within_budget);
  EXPECT_LE(setup.instance.Distance(result->result.best,
                                    setup.instance.MaxElement()),
            2.0 * setup.delta_e + 1e-12);
  EXPECT_LE(static_cast<int64_t>(result->result.candidates.size()),
            2 * setup.u_n - 1);
}

TEST(BudgetedMaxTest, TightBudgetStopsPhaseOneButKeepsTheMaximum) {
  TwoClassSetup setup = MakeSetup(1200, 10, 3, /*seed=*/71);
  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, 72);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, 73);
  BudgetedMaxOptions options;
  options.base.filter.u_n = setup.u_n;
  options.prices = CostModel{1.0, 20.0};
  // Expert reserve + roughly one filtering round's worth of naive funds.
  const double reserve =
      static_cast<double>(TwoMaxFindComparisonUpperBound(2 * setup.u_n - 1)) *
      20.0;
  options.budget = reserve + 1200.0 * 2.0 * static_cast<double>(setup.u_n) +
                   5000.0;
  Result<BudgetedMaxResult> result = BudgetedFindMaxWithExperts(
      setup.instance.AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->filter_stopped_by_budget);
  // The maximum must still be in the (larger) candidate set and, with the
  // expert threshold, the answer stays within the guarantee.
  EXPECT_NE(std::find(result->result.candidates.begin(),
                      result->result.candidates.end(),
                      setup.instance.MaxElement()),
            result->result.candidates.end());
  EXPECT_LE(setup.instance.Distance(result->result.best,
                                    setup.instance.MaxElement()),
            2.0 * setup.delta_e + 1e-12);
}

TEST(BudgetedMaxTest, InsufficientBudgetRejected) {
  TwoClassSetup setup = MakeSetup(300, 8, 3, /*seed=*/81);
  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, 82);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, 83);
  BudgetedMaxOptions options;
  options.base.filter.u_n = setup.u_n;
  options.prices = CostModel{1.0, 20.0};
  options.budget = 10.0;  // Cannot even cover the expert reserve.
  EXPECT_FALSE(BudgetedFindMaxWithExperts(setup.instance.AllElements(),
                                          &naive, &expert, options)
                   .ok());
}

TEST(ExpertMaxTest, UnderestimatedUnDegradesGracefully) {
  // With u_n far too small the true maximum may be filtered out, but the
  // algorithm must still return a valid element.
  TwoClassSetup setup = MakeSetup(500, 20, 5, /*seed=*/41);
  ThresholdComparator naive(&setup.instance,
                            ThresholdModel{setup.delta_n, 0.0}, /*seed=*/42);
  ThresholdComparator expert(&setup.instance,
                             ThresholdModel{setup.delta_e, 0.0}, /*seed=*/43);
  ExpertMaxOptions options;
  options.filter.u_n = 2;  // True value ~20.
  Result<ExpertMaxResult> result = FindMaxWithExperts(
      setup.instance.AllElements(), &naive, &expert, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(setup.instance.Contains(result->best));
}

}  // namespace
}  // namespace crowdmax
