// Tests for the fault-tolerant execution layer (core/resilient.h): retry
// resolution, relaxed quorum, graceful degradation, typed exhaustion, the
// partial-result contract of the Batched* algorithms, and determinism of
// injected faults across thread counts.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batched.h"
#include "core/comparator.h"
#include "core/instance.h"
#include "core/resilient.h"
#include "core/trace.h"
#include "core/worker_model.h"
#include "datasets/instances.h"
#include "platform/platform.h"

namespace crowdmax {
namespace {

// Test double with a scripted fallible path: call k of TryExecuteBatch
// behaves per script[k] (the last entry repeats). Winners are always the
// larger id, so expectations are self-evident.
class ScriptedExecutor : public BatchExecutor {
 public:
  enum class Call {
    kAnswerAll,      // every task answered, counted_votes = 5
    kUnansweredAll,  // provisional majority, answered = false, 1 vote
    kUnavailable,    // whole submission fails transiently
    kInvalidArgument,  // non-transient failure
  };

  explicit ScriptedExecutor(std::vector<Call> script)
      : script_(std::move(script)) {
    CROWDMAX_CHECK(!script_.empty());
  }

  int64_t calls() const { return calls_; }

 private:
  std::vector<ElementId> DoExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override {
    std::vector<ElementId> winners;
    winners.reserve(tasks.size());
    for (const ComparisonPair& task : tasks) {
      winners.push_back(std::max(task.first, task.second));
    }
    return winners;
  }

  Result<std::vector<BatchTaskResult>> DoTryExecuteBatch(
      const std::vector<ComparisonPair>& tasks) override {
    const Call call =
        script_[std::min(static_cast<size_t>(calls_), script_.size() - 1)];
    ++calls_;
    switch (call) {
      case Call::kUnavailable:
        return Status::Unavailable("scripted outage");
      case Call::kInvalidArgument:
        return Status::InvalidArgument("scripted contract violation");
      case Call::kUnansweredAll: {
        std::vector<BatchTaskResult> out;
        out.reserve(tasks.size());
        for (const ComparisonPair& task : tasks) {
          out.push_back({std::max(task.first, task.second), false, 1});
        }
        return out;
      }
      case Call::kAnswerAll:
        break;
    }
    std::vector<BatchTaskResult> out;
    out.reserve(tasks.size());
    for (const ComparisonPair& task : tasks) {
      out.push_back({std::max(task.first, task.second), true, 5});
    }
    return out;
  }

  std::vector<Call> script_;
  int64_t calls_ = 0;
};

using Call = ScriptedExecutor::Call;

const std::vector<ComparisonPair> kTwoTasks = {{0, 1}, {2, 3}};

TEST(BatchExecutorTest, DefaultTryPathAnswersEverything) {
  Instance instance({1.0, 2.0, 3.0});
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);

  Result<std::vector<BatchTaskResult>> results =
      executor.TryExecuteBatch({{0, 2}, {1, 2}});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  for (const BatchTaskResult& result : *results) {
    EXPECT_TRUE(result.answered);
    EXPECT_EQ(result.winner, 2);
    EXPECT_EQ(result.counted_votes, -1);
  }
  EXPECT_EQ(executor.logical_steps(), 1);
  EXPECT_EQ(executor.comparisons(), 2);

  // Empty batches cost nothing on the fallible path either.
  ASSERT_TRUE(executor.TryExecuteBatch({}).ok());
  EXPECT_EQ(executor.logical_steps(), 1);
}

TEST(BatchExecutorTest, ResetCountersIsVirtualThroughBasePointer) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor executor(&oracle);
  executor.ExecuteBatch({{0, 1}});
  BatchExecutor* base = &executor;
  EXPECT_EQ(base->fault_report(), nullptr);
  base->ResetCounters();
  EXPECT_EQ(base->logical_steps(), 0);
  EXPECT_EQ(base->comparisons(), 0);
}

TEST(BatchExecutorTest, PartialBatchChargesExactlyTheVotesProduced) {
  // Regression for the batch-path accounting audit (DESIGN.md §14): a
  // GenerateVotes call stopped short by an invalid pair must charge only
  // the votes actually produced — never the requested batch size — and a
  // ResetCount in between must not resurrect the unanswered remainder.
  Instance instance({1.0, 2.0, 3.0, 4.0});
  ThresholdComparator cmp(&instance, ThresholdModel{0.5, 0.1}, /*seed=*/77);
  VoteBatchComparator* batch = cmp.AsVoteBatch();
  ASSERT_NE(batch, nullptr);

  const std::vector<ComparisonPair> pairs = {{0, 3}, {1, 2}, {-1, 2}, {0, 1}};
  std::vector<ElementId> out(pairs.size(), -7);
  EXPECT_EQ(batch->GenerateVotes(pairs, out), 2);
  EXPECT_EQ(cmp.num_comparisons(), 2);

  cmp.ResetCount();
  std::vector<ComparisonPair> valid = {{0, 3}, {1, 2}, {0, 1}};
  std::vector<ElementId> winners(valid.size());
  EXPECT_EQ(batch->GenerateVotes(valid, winners), 3);
  EXPECT_EQ(cmp.num_comparisons(), 3);
}

TEST(BatchExecutorTest, BatchedExecutorAndComparatorCountersAgree) {
  // ComparatorBatchExecutor charges itself tasks.size() while the batch
  // comparator charges itself inside GenerateVotes; the two counters must
  // stay equal — a divergence means a batch was double- or under-billed.
  Instance instance({1.0, 2.0, 3.0, 4.0, 5.0});
  ThresholdComparator cmp(&instance, ThresholdModel{0.5, 0.1}, /*seed=*/78);
  ComparatorBatchExecutor executor(&cmp);
  executor.ExecuteBatch({{0, 1}, {2, 3}, {1, 4}});
  executor.ExecuteBatch({{0, 4}});
  EXPECT_EQ(executor.comparisons(), 4);
  EXPECT_EQ(cmp.num_comparisons(), 4);

  executor.ResetCounters();
  cmp.ResetCount();
  executor.ExecuteBatch({{2, 4}});
  EXPECT_EQ(executor.comparisons(), 1);
  EXPECT_EQ(cmp.num_comparisons(), 1);
}

TEST(ResilientExecutorTest, CreateValidation) {
  ScriptedExecutor inner({Call::kAnswerAll});
  EXPECT_FALSE(ResilientBatchExecutor::Create(nullptr, {}).ok());
  ResilientOptions bad;
  bad.max_retries = -1;
  EXPECT_FALSE(ResilientBatchExecutor::Create(&inner, bad).ok());
  bad = {};
  bad.min_votes = 0;
  EXPECT_FALSE(ResilientBatchExecutor::Create(&inner, bad).ok());
  bad = {};
  bad.backoff_base_steps = -1;
  EXPECT_FALSE(ResilientBatchExecutor::Create(&inner, bad).ok());
  EXPECT_TRUE(ResilientBatchExecutor::Create(&inner, {}).ok());
}

TEST(ResilientExecutorTest, RetriesAbsorbTransientOutages) {
  ScriptedExecutor inner({Call::kUnavailable, Call::kUnavailable,
                          Call::kAnswerAll});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ((*results)[0].winner, 1);
  EXPECT_EQ((*results)[1].winner, 3);
  const FaultReport& report = (*resilient)->report();
  EXPECT_EQ(report.batches, 1);
  EXPECT_EQ(report.attempts, 3);
  EXPECT_EQ(report.transient_errors, 2);
  EXPECT_FALSE(report.exhausted);
  // Caller-visible accounting: one batch, one step; the retries are the
  // recovery's cost, not the caller's.
  EXPECT_EQ((*resilient)->logical_steps(), 1);
}

TEST(ResilientExecutorTest, RetriesReissueUnansweredTasks) {
  ScriptedExecutor inner({Call::kUnansweredAll, Call::kAnswerAll});
  ResilientOptions options;
  options.min_votes = 3;  // Above the scripted 1 vote: no relaxed accept.
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE((*results)[0].answered);
  EXPECT_TRUE((*results)[1].answered);
  const FaultReport& report = (*resilient)->report();
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.votes_lost, 2);
  EXPECT_EQ(report.retried_tasks, 2);
  EXPECT_EQ(report.relaxed_accepts, 0);
  // The re-issue cost one extra inner step plus the first backoff wait.
  EXPECT_EQ(report.backoff_steps, 1);
  EXPECT_EQ(report.steps_added, 2);
}

// Regression for the retry double-/under-charging bug: comparisons() must
// record the true crowd spend — every task of every attempt, once each —
// matching the inner executor's dispatch count exactly.
TEST(ResilientExecutorTest, EveryRetryAttemptChargedExactlyOnce) {
  ScriptedExecutor inner({Call::kUnansweredAll, Call::kAnswerAll});
  ResilientOptions options;
  options.min_votes = 3;  // Above the scripted 1 vote: forces a re-issue.
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  AlgoTrace trace;
  {
    ScopedTrace scope(&trace);
    ASSERT_TRUE((*resilient)->TryExecuteBatch(kTwoTasks).ok());
  }
  // 2 tasks on the first attempt + 2 re-issued = 4 dispatched inner-side.
  EXPECT_EQ(inner.comparisons(), 4);
  EXPECT_EQ((*resilient)->comparisons(), 4);
  EXPECT_EQ((*resilient)->logical_steps(), 1);

  // The trace sees the same spend cell-by-cell: 2 no-quorum returns, 2
  // answered re-buys, 2 retry re-issues — and the auditor identity holds.
  const TraceCellCounts totals = trace.Totals();
  EXPECT_EQ(totals.dispatched, 4);
  EXPECT_EQ(totals.answered, 2);
  EXPECT_EQ(totals.no_quorum, 2);
  EXPECT_EQ(totals.retries, 2);
  MetricsAuditor auditor(&trace);
  auditor.ExpectDispatchedTotal((*resilient)->comparisons());
  EXPECT_TRUE(auditor.Check().ok());
}

TEST(ResilientExecutorTest, ExhaustedBatchesStillChargeEveryAttempt) {
  ScriptedExecutor inner({Call::kUnansweredAll});
  ResilientOptions options;
  options.max_retries = 2;
  options.min_votes = 3;
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  ASSERT_FALSE((*resilient)->TryExecuteBatch(kTwoTasks).ok());
  // The batch failed — no logical step for the caller — but the crowd was
  // still paid for 3 attempts x 2 tasks.
  EXPECT_EQ(inner.comparisons(), 6);
  EXPECT_EQ((*resilient)->comparisons(), 6);
  EXPECT_EQ((*resilient)->logical_steps(), 0);
}

TEST(ResilientExecutorTest, FailedSubmissionsAreNotCharged) {
  ScriptedExecutor inner({Call::kUnavailable, Call::kAnswerAll});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());
  ASSERT_TRUE((*resilient)->TryExecuteBatch(kTwoTasks).ok());
  // The outage attempt dispatched nothing; only the successful re-submit
  // is crowd spend.
  EXPECT_EQ(inner.comparisons(), 2);
  EXPECT_EQ((*resilient)->comparisons(), 2);
}

TEST(ResilientExecutorTest, NonTransientFailureChargesWhatWasDispatched) {
  ScriptedExecutor inner({Call::kInvalidArgument});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());
  ASSERT_FALSE((*resilient)->TryExecuteBatch(kTwoTasks).ok());
  EXPECT_EQ(inner.comparisons(), 0);
  EXPECT_EQ((*resilient)->comparisons(), 0);
}

// The end-to-end version of the charging regression: over a real faulty
// platform with a billing transcript, the resilient wrapper's comparison
// count must equal the inner dispatch count and the number of tasks the
// platform billed (one transcript entry per submitted task, retries
// included).
TEST(ResilientExecutorTest, ComparisonsMatchPlatformTranscriptUnderFaults) {
  Result<Instance> instance = UniformInstance(30, /*seed=*/51);
  ASSERT_TRUE(instance.ok());
  OracleComparator crowd(&*instance);

  FaultOptions fault;
  fault.abandon_probability = 0.3;
  fault.min_quorum = 2;
  fault.seed = 9;
  PlatformOptions options;
  options.num_workers = 20;
  options.spammer_fraction = 0.0;
  options.honest_slip_probability = 0.0;
  options.gold_task_probability = 0.0;
  options.record_transcript = true;
  options.seed = 10;
  options.fault = fault;
  auto platform = CrowdPlatform::Create(&crowd, &*instance, {}, options);
  ASSERT_TRUE(platform.ok());
  auto inner = PlatformBatchExecutor::Create(platform->get(), /*votes=*/3);
  ASSERT_TRUE(inner.ok());

  ResilientOptions recovery;
  recovery.max_retries = 8;
  recovery.min_votes = 2;
  recovery.fallback = SmallerIdFallback;
  auto resilient = ResilientBatchExecutor::Create(inner->get(), recovery);
  ASSERT_TRUE(resilient.ok());

  FilterOptions filter;
  filter.u_n = 3;
  Result<BatchedFilterResult> result = BatchedFilterCandidates(
      instance->AllElements(), filter, resilient->get());
  ASSERT_TRUE(result.ok());
  ASSERT_GT((*resilient)->report().retried_tasks, 0);

  EXPECT_EQ((*resilient)->comparisons(), (*inner)->comparisons());
  EXPECT_EQ((*resilient)->comparisons(),
            static_cast<int64_t>((*platform)->transcript().size()));
}

TEST(ResilientExecutorTest, RelaxedQuorumAcceptsProvisionalMajorities) {
  ScriptedExecutor inner({Call::kUnansweredAll, Call::kAnswerAll});
  ResilientOptions options;
  options.min_votes = 1;  // The scripted partials carry 1 vote: accept.
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE((*results)[0].answered);
  EXPECT_EQ((*results)[0].winner, 1);
  const FaultReport& report = (*resilient)->report();
  EXPECT_EQ(report.attempts, 1);  // Nothing was re-bought.
  EXPECT_EQ(report.relaxed_accepts, 2);
  EXPECT_EQ(report.retried_tasks, 0);
}

TEST(ResilientExecutorTest, ExhaustionReturnsTypedStatusWithReport) {
  ScriptedExecutor inner({Call::kUnansweredAll});
  ResilientOptions options;
  options.max_retries = 2;
  options.min_votes = 3;
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(results.status().message().find("retry budget exhausted"),
            std::string::npos);
  const FaultReport& report = (*resilient)->report();
  EXPECT_TRUE(report.exhausted);
  EXPECT_EQ(report.attempts, 3);  // 1 initial + max_retries.
  EXPECT_EQ(report.retried_tasks, 4);
  EXPECT_EQ(report.last_error.code(), StatusCode::kUnavailable);
  EXPECT_NE(report.ToString().find("exhausted"), std::string::npos);
  // A failed batch is not charged to the caller.
  EXPECT_EQ((*resilient)->logical_steps(), 0);
}

TEST(ResilientExecutorTest, FallbackDegradesGracefully) {
  ScriptedExecutor inner({Call::kUnansweredAll});
  ResilientOptions options;
  options.max_retries = 1;
  options.min_votes = 3;
  options.fallback = SmallerIdFallback;
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE((*results)[0].answered);
  EXPECT_EQ((*results)[0].winner, 0);  // SmallerIdFallback.
  EXPECT_EQ((*results)[1].winner, 2);
  EXPECT_EQ((*results)[0].counted_votes, 0);  // No crowd evidence.
  const FaultReport& report = (*resilient)->report();
  EXPECT_EQ(report.degraded_tasks, 2);
  EXPECT_FALSE(report.exhausted);
}

TEST(ResilientExecutorTest, NonTransientErrorsPropagateWithoutRetry) {
  ScriptedExecutor inner({Call::kInvalidArgument});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());

  Result<std::vector<BatchTaskResult>> results =
      (*resilient)->TryExecuteBatch(kTwoTasks);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(inner.calls(), 1);  // Retrying a contract violation is useless.
}

TEST(ResilientExecutorTest, ResetCountersClearsReport) {
  ScriptedExecutor inner({Call::kUnavailable, Call::kAnswerAll});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());
  ASSERT_TRUE((*resilient)->TryExecuteBatch(kTwoTasks).ok());
  ASSERT_GT((*resilient)->report().attempts, 0);

  (*resilient)->ResetCounters();
  EXPECT_EQ((*resilient)->logical_steps(), 0);
  EXPECT_EQ((*resilient)->report().attempts, 0);
  EXPECT_EQ((*resilient)->report().transient_errors, 0);
}

TEST(ResilientExecutorTest, FaultReportVisibleThroughBaseInterface) {
  ScriptedExecutor inner({Call::kAnswerAll});
  auto resilient = ResilientBatchExecutor::Create(&inner, {});
  ASSERT_TRUE(resilient.ok());
  BatchExecutor* base = resilient->get();
  ASSERT_NE(base->fault_report(), nullptr);
  EXPECT_EQ(base->fault_report(), &(*resilient)->report());
}

TEST(FaultInjectingExecutorTest, CreateValidation) {
  Instance instance({1.0, 2.0});
  OracleComparator oracle(&instance);
  ComparatorBatchExecutor inner(&oracle);
  EXPECT_FALSE(FaultInjectingBatchExecutor::Create(nullptr, {}).ok());
  InjectedFaultOptions bad;
  bad.drop_probability = 1.0;
  EXPECT_FALSE(FaultInjectingBatchExecutor::Create(&inner, bad).ok());
  bad = {};
  bad.partial_votes = 0;
  EXPECT_FALSE(FaultInjectingBatchExecutor::Create(&inner, bad).ok());
  EXPECT_TRUE(FaultInjectingBatchExecutor::Create(&inner, {}).ok());
}

TEST(FaultInjectingExecutorTest, InjectsDeterministicFaults) {
  Instance instance({1.0, 2.0, 3.0, 4.0});
  auto run = [&] {
    OracleComparator oracle(&instance);
    ComparatorBatchExecutor inner(&oracle);
    InjectedFaultOptions options;
    options.drop_probability = 0.3;
    options.no_quorum_probability = 0.2;
    options.seed = 11;
    auto injector = FaultInjectingBatchExecutor::Create(&inner, options);
    CROWDMAX_CHECK(injector.ok());
    std::vector<bool> answered;
    for (int round = 0; round < 20; ++round) {
      auto results = (*injector)->TryExecuteBatch({{0, 1}, {1, 2}, {2, 3}});
      CROWDMAX_CHECK(results.ok());
      for (const BatchTaskResult& result : *results) {
        answered.push_back(result.answered);
      }
    }
    return std::make_pair(answered, (*injector)->injected_drops());
  };
  const auto first = run();
  EXPECT_GT(first.second, 0);
  EXPECT_NE(std::count(first.first.begin(), first.first.end(), true), 0);
  EXPECT_EQ(first, run());  // Same seed, same injected pattern.
}

// The acceptance bar for thread-safety of the recovery stack: resilient
// execution over injected faults over the parallel engine must produce
// bit-identical results and accounting at 1 and 8 threads.
TEST(ResilientExecutorTest, BitIdenticalAcrossThreadCounts) {
  Result<Instance> instance = UniformInstance(80, /*seed=*/31);
  ASSERT_TRUE(instance.ok());
  const double delta = instance->DeltaForU(6);

  struct RunOutcome {
    ElementId best;
    bool partial;
    int64_t steps;
    int64_t attempts;
    int64_t retried;
    int64_t relaxed;
    int64_t drops;
    bool operator==(const RunOutcome& o) const {
      return best == o.best && partial == o.partial && steps == o.steps &&
             attempts == o.attempts && retried == o.retried &&
             relaxed == o.relaxed && drops == o.drops;
    }
  };
  auto run = [&](int64_t threads) {
    ThresholdComparator comparator(&*instance, ThresholdModel{delta, 0.0},
                                   /*seed=*/32);
    auto parallel = ParallelBatchExecutor::Create(&comparator, threads,
                                                  /*seed=*/33,
                                                  /*chunk_size=*/16);
    CROWDMAX_CHECK(parallel.ok());
    InjectedFaultOptions fault_options;
    fault_options.drop_probability = 0.15;
    fault_options.no_quorum_probability = 0.1;
    fault_options.unavailable_probability = 0.05;
    fault_options.partial_votes = 2;
    fault_options.seed = 34;
    auto injector =
        FaultInjectingBatchExecutor::Create(parallel->get(), fault_options);
    CROWDMAX_CHECK(injector.ok());
    ResilientOptions resilient_options;
    resilient_options.max_retries = 8;
    resilient_options.min_votes = 2;
    auto resilient =
        ResilientBatchExecutor::Create(injector->get(), resilient_options);
    CROWDMAX_CHECK(resilient.ok());

    Result<BatchedMaxFindResult> result =
        BatchedTwoMaxFind(instance->AllElements(), resilient->get());
    CROWDMAX_CHECK(result.ok());
    const FaultReport& report = (*resilient)->report();
    return RunOutcome{result->maxfind.best,    result->partial,
                      result->logical_steps,   report.attempts,
                      report.retried_tasks,    report.relaxed_accepts,
                      (*injector)->injected_drops()};
  };

  const RunOutcome serial = run(1);
  const RunOutcome parallel = run(8);
  EXPECT_TRUE(serial == parallel);
  EXPECT_FALSE(serial.partial);
  // Faults were recovered, so Lemma 3's guarantee must still hold.
  EXPECT_LE(instance->Distance(serial.best, instance->MaxElement()),
            2.0 * delta + 1e-12);
}

// Partial-result contract: when the recovery budget is exhausted with no
// fallback, the batched algorithms return survivors-so-far plus the typed
// status instead of aborting.
TEST(BatchedPartialResultTest, FilterReturnsSurvivorsOnExhaustedBudget) {
  ScriptedExecutor inner({Call::kUnansweredAll});
  ResilientOptions options;
  options.max_retries = 1;
  options.min_votes = 3;
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  std::vector<ElementId> items;
  for (ElementId e = 0; e < 12; ++e) items.push_back(e);
  FilterOptions filter;
  filter.u_n = 1;
  Result<BatchedFilterResult> result =
      BatchedFilterCandidates(items, filter, resilient->get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->fault_status.code(), StatusCode::kUnavailable);
  // No evidence arrived, so nothing was (wrongly) eliminated.
  EXPECT_EQ(result->filter.candidates, items);
}

TEST(BatchedPartialResultTest, TwoMaxFindReturnsSurvivorsOnExhaustedBudget) {
  ScriptedExecutor inner({Call::kUnansweredAll});
  ResilientOptions options;
  options.max_retries = 1;
  options.min_votes = 3;
  auto resilient = ResilientBatchExecutor::Create(&inner, options);
  ASSERT_TRUE(resilient.ok());

  std::vector<ElementId> items;
  for (ElementId e = 0; e < 12; ++e) items.push_back(e);
  Result<BatchedMaxFindResult> result =
      BatchedTwoMaxFind(items, resilient->get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->fault_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->maxfind.best, -1);
  EXPECT_EQ(result->survivors, items);
  EXPECT_TRUE((*resilient)->report().exhausted);
}

TEST(BatchedPartialResultTest, ExpertPhaseStillRunsAfterPartialFilter) {
  // Phase 1 exhausts its budget immediately; phase 2 is healthy. The
  // conservative filter keeps everything, so the experts still find the
  // true maximum — the run is flagged partial with both reports attached.
  ScriptedExecutor naive_inner({Call::kUnansweredAll});
  ResilientOptions naive_options;
  naive_options.max_retries = 1;
  naive_options.min_votes = 3;
  auto naive = ResilientBatchExecutor::Create(&naive_inner, naive_options);
  ASSERT_TRUE(naive.ok());

  ScriptedExecutor expert_inner({Call::kAnswerAll});
  auto expert = ResilientBatchExecutor::Create(&expert_inner, {});
  ASSERT_TRUE(expert.ok());

  std::vector<ElementId> items;
  for (ElementId e = 0; e < 12; ++e) items.push_back(e);
  ExpertMaxOptions options;
  options.filter.u_n = 2;
  Result<BatchedExpertMaxResult> result =
      BatchedFindMaxWithExperts(items, naive->get(), expert->get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_EQ(result->fault_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result->result.candidates, items);
  EXPECT_EQ(result->result.best, 11);  // ScriptedExecutor: larger id wins.
  ASSERT_TRUE(result->has_naive_faults);
  ASSERT_TRUE(result->has_expert_faults);
  EXPECT_TRUE(result->naive_faults.exhausted);
  EXPECT_FALSE(result->expert_faults.exhausted);
}

}  // namespace
}  // namespace crowdmax
