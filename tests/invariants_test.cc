// Randomized cross-module invariant sweeps: for many random
// configurations (size, u targets, tie policy, optimizations), the
// library's contracts must hold simultaneously. These complement the
// per-module tests with breadth — each seed exercises the full pipeline.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/batched.h"
#include "core/expert_max.h"
#include "core/filter_phase.h"
#include "core/instance.h"
#include "core/maxfind.h"
#include "core/topk.h"
#include "core/worker_model.h"
#include "datasets/instances.h"

namespace crowdmax {
namespace {

struct RandomConfig {
  int64_t n;
  int64_t u_n_target;
  int64_t u_e_target;
  TiePolicy tie_policy;
  bool memoize;
  bool loss_counter;
  int64_t group_multiplier;
};

RandomConfig DrawConfig(Rng* rng) {
  RandomConfig config;
  config.n = rng->NextInt(30, 1200);
  config.u_n_target = rng->NextInt(2, std::max<int64_t>(3, config.n / 12));
  config.u_e_target = rng->NextInt(1, std::max<int64_t>(2, config.u_n_target / 2));
  config.tie_policy = rng->NextBernoulli(0.5) ? TiePolicy::kFreshCoin
                                              : TiePolicy::kPersistentArbitrary;
  config.memoize = rng->NextBernoulli(0.5);
  config.loss_counter = rng->NextBernoulli(0.5);
  config.group_multiplier = rng->NextBernoulli(0.3) ? 2 : 4;
  return config;
}

class PipelineInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineInvariantSweep, AllContractsHold) {
  Rng rng(GetParam());
  for (int repetition = 0; repetition < 6; ++repetition) {
    const RandomConfig config = DrawConfig(&rng);
    Result<Instance> instance = UniformInstance(config.n, rng.Fork());
    ASSERT_TRUE(instance.ok());
    const double delta_n = instance->DeltaForU(config.u_n_target);
    const double delta_e = instance->DeltaForU(config.u_e_target);
    const int64_t u_n = instance->CountWithin(delta_n);

    ThresholdComparator::Options naive_options;
    naive_options.model = ThresholdModel{delta_n, 0.0};
    naive_options.tie_policy = config.tie_policy;
    ThresholdComparator naive(&*instance, naive_options, rng.Fork());
    ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                               rng.Fork());

    ExpertMaxOptions options;
    options.filter.u_n = u_n;
    options.filter.memoize = config.memoize;
    options.filter.global_loss_counter = config.loss_counter;
    options.filter.group_size_multiplier = config.group_multiplier;

    Result<ExpertMaxResult> result = FindMaxWithExperts(
        instance->AllElements(), &naive, &expert, options);
    ASSERT_TRUE(result.ok()) << "n=" << config.n << " u_n=" << u_n;

    // Contract 1: the returned element exists and is within 2*delta_e.
    ASSERT_TRUE(instance->Contains(result->best));
    EXPECT_LE(instance->Distance(result->best, instance->MaxElement()),
              2.0 * delta_e + 1e-12)
        << "n=" << config.n << " u_n=" << u_n;

    // Contract 2: the true maximum survived phase 1.
    EXPECT_NE(std::find(result->candidates.begin(), result->candidates.end(),
                        instance->MaxElement()),
              result->candidates.end());

    // Contract 3: candidate-set size bound (no degradation flags expected
    // with a correct u_n).
    EXPECT_FALSE(result->filter_hit_empty_round);
    if (config.n >= 2 * u_n) {
      EXPECT_LE(static_cast<int64_t>(result->candidates.size()), 2 * u_n - 1);
    }

    // Contract 4: comparison budgets.
    EXPECT_LE(result->issued.naive,
              options.filter.group_size_multiplier * config.n * u_n);
    EXPECT_LE(result->paid.naive, result->issued.naive);
    EXPECT_LE(result->paid.expert,
              TwoMaxFindComparisonUpperBound(
                  static_cast<int64_t>(result->candidates.size())));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariantSweep,
                         ::testing::Range<uint64_t>(1, 9));

class BatchedEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchedEquivalenceSweep, BatchedMatchesSequentialEverywhere) {
  Rng rng(GetParam() * 7919);
  for (int repetition = 0; repetition < 4; ++repetition) {
    const int64_t n = rng.NextInt(20, 500);
    const int64_t u_target = rng.NextInt(2, std::max<int64_t>(3, n / 10));
    Result<Instance> instance = UniformInstance(n, rng.Fork());
    ASSERT_TRUE(instance.ok());
    const double delta = instance->DeltaForU(u_target);

    ThresholdComparator::Options worker_options;
    worker_options.model = ThresholdModel{delta, 0.0};
    worker_options.tie_policy = TiePolicy::kPersistentArbitrary;
    const uint64_t worker_seed = rng.Fork();

    FilterOptions filter;
    filter.u_n = instance->CountWithin(delta);

    ThresholdComparator seq_worker(&*instance, worker_options, worker_seed);
    Result<FilterResult> sequential =
        FilterCandidates(instance->AllElements(), filter, &seq_worker);

    ThresholdComparator batch_worker(&*instance, worker_options, worker_seed);
    ComparatorBatchExecutor executor(&batch_worker);
    Result<BatchedFilterResult> batched =
        BatchedFilterCandidates(instance->AllElements(), filter, &executor);

    ASSERT_TRUE(sequential.ok() && batched.ok());
    EXPECT_EQ(batched->filter.candidates, sequential->candidates)
        << "n=" << n << " u=" << filter.u_n;
    EXPECT_EQ(batched->filter.paid_comparisons,
              sequential->paid_comparisons);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedEquivalenceSweep,
                         ::testing::Range<uint64_t>(1, 7));

class TopKInvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKInvariantSweep, TopKContractsHold) {
  Rng rng(GetParam() * 104729);
  for (int repetition = 0; repetition < 4; ++repetition) {
    const int64_t n = rng.NextInt(40, 600);
    const int64_t k = rng.NextInt(1, 8);
    Result<Instance> instance = UniformInstance(n, rng.Fork());
    ASSERT_TRUE(instance.ok());
    const double delta_n = instance->DeltaForU(5);
    const double delta_e = instance->DeltaForU(2);

    std::vector<ElementId> by_rank = instance->AllElements();
    std::sort(by_rank.begin(), by_rank.end(), [&](ElementId a, ElementId b) {
      return instance->value(a) > instance->value(b);
    });
    int64_t blind_spot = 1;
    for (int64_t j = 0; j < k; ++j) {
      blind_spot = std::max(
          blind_spot,
          instance->CountWithinOf(by_rank[static_cast<size_t>(j)], delta_n));
    }

    ThresholdComparator naive(&*instance, ThresholdModel{delta_n, 0.0},
                              rng.Fork());
    ThresholdComparator expert(&*instance, ThresholdModel{delta_e, 0.0},
                               rng.Fork());
    TopKOptions options;
    options.k = k;
    options.filter.u_n = blind_spot;
    Result<TopKResult> result = FindTopKWithExperts(instance->AllElements(),
                                                    &naive, &expert, options);
    ASSERT_TRUE(result.ok()) << "n=" << n << " k=" << k;
    ASSERT_EQ(result->top.size(), static_cast<size_t>(k));
    for (int64_t j = 0; j < k; ++j) {
      EXPECT_GE(
          instance->value(result->top[static_cast<size_t>(j)]),
          instance->value(by_rank[static_cast<size_t>(j)]) - 2.0 * delta_e -
              1e-12)
          << "n=" << n << " k=" << k << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKInvariantSweep,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace crowdmax
